package core

// Frozen index persistence: the arena serializes as its backing arrays,
// so saving is a handful of sequential writes and loading is either a
// sequential read straight into final heap slices (LoadFrozen) or — the
// point of version 2 — no read at all: the stream's sections are 8-byte
// aligned and offset-addressed, so FrozenFromArena points the arrays
// directly at an mmap'd file region and the open costs O(header)
// allocations however large the index is. This is the stream the
// sharded TSSH v3 format embeds per shard.
//
// Version 2 format (little-endian; all sections 8-byte aligned relative
// to the stream start, which mmap's page alignment promotes to absolute
// alignment):
//
//	off 0   magic "TSFZ"
//	off 4   version u16 (= 2)
//	off 6   mode u8, reserved u8 (0)
//	off 8   L u32, MinCap u32, MaxCap u32, height u32
//	off 24  size u64, seriesLen u64
//	off 40  nodeCount u32, leafStart u32
//	off 48  firstOff, countOff, positionsOff, upperOff, lowerOff u64
//	off 88  totalLen u64
//	off 96  sections, each at its recorded offset, zero-padded between:
//	        first     nodeCount × i32
//	        count     nodeCount × i32
//	        positions size × i32
//	        upper     nodeCount·L × f64
//	        lower     nodeCount·L × f64
//
// The section offsets are recorded for self-description but are not
// trusted: both loaders recompute the canonical layout from the counts
// and reject any stream whose offsets disagree, so a hostile header
// cannot alias sections or point them outside the stream. Version 1
// (unaligned, sections implicit) is still read by LoadFrozen; the
// writer below emits only v2.
//
// Like the pointer formats, the series itself is not embedded.
// LoadFrozen validates the full invariants against the supplied
// extractor before returning; FrozenFromArena validates the structural
// (memory-safety) half — see Frozen.CheckStructure for the split.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"twinsearch/internal/arena"
	"twinsearch/internal/series"
)

// FrozenMagic is the stream prefix identifying a frozen single index;
// callers that accept several formats sniff it to dispatch (see
// twinsearch.OpenSaved).
const FrozenMagic = "TSFZ"

const (
	frozenVersion1 = 1
	FrozenVersion  = 2

	// frozenHeaderSize is the fixed v2 header length; the first section
	// starts here, already 8-byte aligned.
	frozenHeaderSize = 96
)

// maxFrozenHeight bounds the recorded tree height on load; with
// MaxCap ≥ 3 even a billion-window index stays under 20 levels, so
// anything past this is a corrupt or hostile stream, rejected before
// the node-count plausibility check multiplies by it.
const maxFrozenHeight = 64

// frozenLayout is the canonical v2 section placement for an arena with
// nn nodes, np positions, and subsequence length l. Both the writer and
// the loaders derive it from the counts alone.
type frozenLayout struct {
	firstOff, countOff, positionsOff, upperOff, lowerOff, totalLen int64
}

func layoutFrozen(nn, np, l int64) frozenLayout {
	var lo frozenLayout
	lo.firstOff = frozenHeaderSize
	lo.countOff = arena.Align8(lo.firstOff + 4*nn)
	lo.positionsOff = arena.Align8(lo.countOff + 4*nn)
	lo.upperOff = arena.Align8(lo.positionsOff + 4*np)
	lo.lowerOff = lo.upperOff + 8*nn*l
	lo.totalLen = lo.lowerOff + 8*nn*l
	return lo
}

// StreamLen returns the exact byte length WriteTo will produce — the
// layout is deterministic in the array sizes, so container formats
// (TSSH v3) can write segment tables ahead of the segments.
func (f *Frozen) StreamLen() int64 {
	return layoutFrozen(int64(len(f.first)), int64(len(f.positions)), int64(f.cfg.L)).totalLen
}

// WriteTo serializes the frozen index in the current (v2, aligned)
// format. It implements io.WriterTo.
func (f *Frozen) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}

	nn := int64(len(f.first))
	lo := layoutFrozen(nn, int64(len(f.positions)), int64(f.cfg.L))
	hdr := make([]byte, frozenHeaderSize)
	copy(hdr, FrozenMagic)
	binary.LittleEndian.PutUint16(hdr[4:], FrozenVersion)
	hdr[6] = uint8(f.ext.Mode())
	binary.LittleEndian.PutUint32(hdr[8:], uint32(f.cfg.L))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(f.cfg.MinCap))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(f.cfg.MaxCap))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(f.height))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(f.size))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(f.ext.Len()))
	binary.LittleEndian.PutUint32(hdr[40:], uint32(nn))
	binary.LittleEndian.PutUint32(hdr[44:], uint32(f.leafStart))
	for i, off := range []int64{lo.firstOff, lo.countOff, lo.positionsOff, lo.upperOff, lo.lowerOff, lo.totalLen} {
		binary.LittleEndian.PutUint64(hdr[48+8*i:], uint64(off))
	}
	if _, err := cw.Write(hdr); err != nil {
		return cw.n, err
	}
	for _, sec := range []struct {
		off int64
		arr interface{}
	}{
		{lo.firstOff, f.first}, {lo.countOff, f.count}, {lo.positionsOff, f.positions},
		{lo.upperOff, f.upper}, {lo.lowerOff, f.lower},
	} {
		if err := padTo(cw, sec.off); err != nil {
			return cw.n, err
		}
		if err := binary.Write(cw, binary.LittleEndian, sec.arr); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WriteLegacyV1 serializes the frozen index in the version 1 format
// (unaligned, sections implicit). Current code never writes it; it is
// retained so the cross-version compatibility tests can produce real v1
// streams and hold the loaders to them.
func (f *Frozen) WriteLegacyV1(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}

	if _, err := cw.Write([]byte(FrozenMagic)); err != nil {
		return cw.n, err
	}
	hdr := []interface{}{
		uint16(frozenVersion1),
		uint8(f.ext.Mode()),
		uint32(f.cfg.L), uint32(f.cfg.MinCap), uint32(f.cfg.MaxCap),
		uint64(f.size), uint32(f.height), uint64(f.ext.Len()),
		uint32(len(f.first)), uint32(f.leafStart),
	}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	for _, arr := range [][]int32{f.first, f.count, f.positions} {
		if err := binary.Write(cw, binary.LittleEndian, arr); err != nil {
			return cw.n, err
		}
	}
	for _, arr := range [][]float64{f.upper, f.lower} {
		if err := binary.Write(cw, binary.LittleEndian, arr); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// padTo writes zero bytes until the counting writer reaches off.
func padTo(cw *countWriter, off int64) error {
	if cw.n > off {
		return fmt.Errorf("core: frozen writer overran section offset %d (at %d)", off, cw.n)
	}
	var zeros [8]byte
	for cw.n < off {
		n := off - cw.n
		if n > int64(len(zeros)) {
			n = int64(len(zeros))
		}
		if _, err := cw.Write(zeros[:n]); err != nil {
			return err
		}
	}
	return nil
}

// frozenHeader is the decoded, not-yet-validated fixed header shared by
// both v2 entry points.
type frozenHeader struct {
	mode                 uint8
	l, minCap, maxCap    uint32
	height               uint32
	size                 uint64
	seriesLen            uint64
	nodeCount, leafStart uint32
	offs                 [6]uint64 // first, count, positions, upper, lower, totalLen
}

func decodeFrozenHeader(hdr []byte) frozenHeader {
	var h frozenHeader
	h.mode = hdr[6]
	h.l = binary.LittleEndian.Uint32(hdr[8:])
	h.minCap = binary.LittleEndian.Uint32(hdr[12:])
	h.maxCap = binary.LittleEndian.Uint32(hdr[16:])
	h.height = binary.LittleEndian.Uint32(hdr[20:])
	h.size = binary.LittleEndian.Uint64(hdr[24:])
	h.seriesLen = binary.LittleEndian.Uint64(hdr[32:])
	h.nodeCount = binary.LittleEndian.Uint32(hdr[40:])
	h.leafStart = binary.LittleEndian.Uint32(hdr[44:])
	for i := range h.offs {
		h.offs[i] = binary.LittleEndian.Uint64(hdr[48+8*i:])
	}
	return h
}

// validateFrozenHeader runs every header-level check shared by the copy
// and zero-copy loaders: extractor agreement, parameter plausibility
// (nothing in the header may command a large allocation or an
// out-of-range index), and — for v2 — that the recorded section offsets
// are exactly the canonical layout.
func validateFrozenHeader(h frozenHeader, ext *series.Extractor, checkOffsets bool) (Config, error) {
	if series.NormMode(h.mode) != ext.Mode() {
		return Config{}, fmt.Errorf("core: load frozen: index built under %v, extractor is %v", series.NormMode(h.mode), ext.Mode())
	}
	if int(h.seriesLen) != ext.Len() {
		return Config{}, fmt.Errorf("core: load frozen: index built over %d points, series has %d", h.seriesLen, ext.Len())
	}
	cfg := Config{L: int(h.l), MinCap: int(h.minCap), MaxCap: int(h.maxCap)}
	if err := cfg.fill(); err != nil {
		return Config{}, fmt.Errorf("core: load frozen: %w", err)
	}
	if ext.Len() < cfg.L {
		return Config{}, fmt.Errorf("core: load frozen: series length %d shorter than subsequence length %d", ext.Len(), cfg.L)
	}
	maxPos := series.NumSubsequences(ext.Len(), cfg.L)
	// Plausibility gates before anything allocates or indexes: a hostile
	// header must not command a multi-gigabyte allocation. A legitimate
	// tree has at most size leaves and fewer internal nodes per level
	// than the level below, so (size+1)·(height+1) over-covers every
	// valid shape.
	if h.size > uint64(maxPos) {
		return Config{}, fmt.Errorf("core: load frozen: %d entries for a series with %d windows", h.size, maxPos)
	}
	if h.height > maxFrozenHeight {
		return Config{}, fmt.Errorf("core: load frozen: implausible height %d", h.height)
	}
	if uint64(h.nodeCount) > (h.size+1)*uint64(h.height+1) {
		return Config{}, fmt.Errorf("core: load frozen: implausible node count %d for %d entries", h.nodeCount, h.size)
	}
	if uint64(h.leafStart) > uint64(h.nodeCount) {
		return Config{}, fmt.Errorf("core: load frozen: leafStart %d exceeds node count %d", h.leafStart, h.nodeCount)
	}
	if checkOffsets {
		lo := layoutFrozen(int64(h.nodeCount), int64(h.size), int64(cfg.L))
		want := [6]uint64{uint64(lo.firstOff), uint64(lo.countOff), uint64(lo.positionsOff),
			uint64(lo.upperOff), uint64(lo.lowerOff), uint64(lo.totalLen)}
		if h.offs != want {
			return Config{}, fmt.Errorf("core: load frozen: section offsets %v differ from the canonical layout %v", h.offs, want)
		}
	}
	return cfg, nil
}

// LoadFrozen reconstructs a frozen index from r against ext, copying
// the arrays into fresh heap slices (the byte-order-independent path;
// FrozenFromArena is the zero-copy one). Version 1 and 2 streams are
// both accepted. The extractor must present the same series (length)
// and normalization mode the index was built with; the arena is fully
// validated before use.
func LoadFrozen(r io.Reader, ext *series.Extractor) (*Frozen, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: load frozen: %w", err)
	}
	if string(magic) != FrozenMagic {
		return nil, fmt.Errorf("core: load frozen: bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("core: load frozen header: %w", err)
	}
	switch version {
	case frozenVersion1:
		return loadFrozenV1(br, ext)
	case FrozenVersion:
	default:
		return nil, fmt.Errorf("core: load frozen: unsupported version %d", version)
	}

	// v2: the 6 bytes consumed so far are magic+version; read the rest
	// of the fixed header, then the sections in stream order.
	hdr := make([]byte, frozenHeaderSize)
	if _, err := io.ReadFull(br, hdr[6:]); err != nil {
		return nil, fmt.Errorf("core: load frozen header: %w", err)
	}
	h := decodeFrozenHeader(hdr)
	cfg, err := validateFrozenHeader(h, ext, true)
	if err != nil {
		return nil, err
	}
	f := &Frozen{ext: ext, cfg: cfg, size: int(h.size), height: int(h.height),
		leafStart: int32(h.leafStart)}
	nn := int(h.nodeCount)
	lo := layoutFrozen(int64(nn), int64(h.size), int64(cfg.L))

	// Walk the sections in stream order, skipping the alignment padding
	// between them. The chunked readers grow their output as bytes
	// actually arrive, so a hostile header claiming a huge arena costs
	// only what the stream ships.
	at := int64(frozenHeaderSize)
	skipTo := func(to int64) error {
		if _, err := io.CopyN(io.Discard, br, to-at); err != nil {
			return err
		}
		at = to
		return nil
	}
	intSections := []struct {
		off  int64
		n    int
		dst  *[]int32
		name string
	}{
		{lo.firstOff, nn, &f.first, "first"},
		{lo.countOff, nn, &f.count, "count"},
		{lo.positionsOff, int(h.size), &f.positions, "positions"},
	}
	for _, sec := range intSections {
		if err := skipTo(sec.off); err != nil {
			return nil, fmt.Errorf("core: load frozen %s: %w", sec.name, err)
		}
		arr, err := readInt32s(br, sec.n)
		if err != nil {
			return nil, fmt.Errorf("core: load frozen %s: %w", sec.name, err)
		}
		*sec.dst = arr
		at += int64(sec.n) * 4
	}
	if err := skipTo(lo.upperOff); err != nil {
		return nil, fmt.Errorf("core: load frozen bounds: %w", err)
	}
	// upper and lower are adjacent (lowerOff = upperOff + 8·nn·L), so one
	// backing array serves both.
	bounds, err := readFloat64s(br, 2*nn*cfg.L)
	if err != nil {
		return nil, fmt.Errorf("core: load frozen bounds: %w", err)
	}
	f.upper = bounds[: len(bounds)/2 : len(bounds)/2]
	f.lower = bounds[len(bounds)/2:]
	if err := f.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: load frozen: reconstructed index is inconsistent with the supplied series: %w", err)
	}
	return f, nil
}

// loadFrozenV1 reads the remainder of a version 1 stream (magic and
// version already consumed).
func loadFrozenV1(br *bufio.Reader, ext *series.Extractor) (*Frozen, error) {
	var (
		mode                 uint8
		l, minCap, maxCap    uint32
		size                 uint64
		height               uint32
		seriesLen            uint64
		nodeCount, leafStart uint32
	)
	for _, v := range []interface{}{&mode, &l, &minCap, &maxCap,
		&size, &height, &seriesLen, &nodeCount, &leafStart} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: load frozen header: %w", err)
		}
	}
	h := frozenHeader{mode: mode, l: l, minCap: minCap, maxCap: maxCap,
		height: height, size: size, seriesLen: seriesLen,
		nodeCount: nodeCount, leafStart: leafStart}
	cfg, err := validateFrozenHeader(h, ext, false)
	if err != nil {
		return nil, err
	}

	f := &Frozen{ext: ext, cfg: cfg, size: int(size), height: int(height),
		leafStart: int32(leafStart)}
	// One backing array per element type; the named slices alias into
	// it, so each sequential read lands directly in its final home.
	ints, err := readInt32s(br, int(2*uint64(nodeCount)+size))
	if err != nil {
		return nil, fmt.Errorf("core: load frozen structure: %w", err)
	}
	f.first = ints[:nodeCount:nodeCount]
	f.count = ints[nodeCount : 2*nodeCount : 2*nodeCount]
	f.positions = ints[2*nodeCount:]
	bounds, err := readFloat64s(br, int(2*uint64(nodeCount)*uint64(cfg.L)))
	if err != nil {
		return nil, fmt.Errorf("core: load frozen bounds: %w", err)
	}
	f.upper = bounds[: len(bounds)/2 : len(bounds)/2]
	f.lower = bounds[len(bounds)/2:]
	if err := f.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: load frozen: reconstructed index is inconsistent with the supplied series: %w", err)
	}
	return f, nil
}

// FrozenFromArena is the zero-copy open path: it interprets the TSFZ v2
// stream at byte offset off of ar as a Frozen whose arrays are views
// directly into the arena — no decoding, no copying, O(header) heap
// allocation however large the index. It returns the frozen index and
// the stream's total length (so callers walking a container format can
// find the next segment).
//
// The caller owns ar and must keep it alive (and unclosed) for the
// Frozen's lifetime. Only v2 streams on little-endian hosts qualify;
// anything else returns an error and the caller falls back to
// LoadFrozen. The structural (memory-safety) invariants are validated
// before the index is returned; the O(size·L) containment validation is
// skipped — see Frozen.CheckStructure.
func FrozenFromArena(ar *arena.Arena, off int64, ext *series.Extractor) (*Frozen, int64, error) {
	buf := ar.Bytes()
	if off < 0 || off > int64(len(buf)) || int64(len(buf))-off < frozenHeaderSize {
		return nil, 0, fmt.Errorf("core: frozen arena: %d-byte region at offset %d too small for a header", len(buf), off)
	}
	hdr := buf[off : off+frozenHeaderSize]
	if string(hdr[:4]) != FrozenMagic {
		return nil, 0, fmt.Errorf("core: frozen arena: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != FrozenVersion {
		return nil, 0, fmt.Errorf("core: frozen arena: version %d streams cannot be mapped in place (zero-copy needs the aligned v%d format)", v, FrozenVersion)
	}
	h := decodeFrozenHeader(hdr)
	cfg, err := validateFrozenHeader(h, ext, true)
	if err != nil {
		return nil, 0, err
	}
	lo := layoutFrozen(int64(h.nodeCount), int64(h.size), int64(cfg.L))
	if lo.totalLen > int64(len(buf))-off {
		return nil, 0, fmt.Errorf("core: frozen arena: stream of %d bytes truncated at %d", lo.totalLen, int64(len(buf))-off)
	}
	f := &Frozen{ext: ext, cfg: cfg, size: int(h.size), height: int(h.height),
		leafStart: int32(h.leafStart), backing: ar}
	nn := int(h.nodeCount)
	if f.first, err = ar.Int32s(off+lo.firstOff, nn); err != nil {
		return nil, 0, fmt.Errorf("core: frozen arena: %w", err)
	}
	if f.count, err = ar.Int32s(off+lo.countOff, nn); err != nil {
		return nil, 0, fmt.Errorf("core: frozen arena: %w", err)
	}
	if f.positions, err = ar.Int32s(off+lo.positionsOff, int(h.size)); err != nil {
		return nil, 0, fmt.Errorf("core: frozen arena: %w", err)
	}
	if f.upper, err = ar.Float64s(off+lo.upperOff, nn*cfg.L); err != nil {
		return nil, 0, fmt.Errorf("core: frozen arena: %w", err)
	}
	if f.lower, err = ar.Float64s(off+lo.lowerOff, nn*cfg.L); err != nil {
		return nil, 0, fmt.Errorf("core: frozen arena: %w", err)
	}
	if err := f.CheckStructure(); err != nil {
		return nil, 0, fmt.Errorf("core: frozen arena: stream is inconsistent with the supplied series: %w", err)
	}
	return f, lo.totalLen, nil
}

// readChunkBytes is the transfer granularity of the array readers: big
// enough to amortize call overhead, small enough that a truncated or
// hostile stream never commands a large up-front allocation.
const readChunkBytes = 1 << 16

// readInt32s reads n little-endian int32 values, growing the output as
// data arrives.
func readInt32s(r io.Reader, n int) ([]int32, error) {
	out := make([]int32, 0, min(n, readChunkBytes/4))
	var buf [readChunkBytes]byte
	for len(out) < n {
		want := min((n-len(out))*4, len(buf))
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, err
		}
		for i := 0; i < want; i += 4 {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[i:])))
		}
	}
	return out, nil
}

// readFloat64s reads n little-endian float64 values, growing the
// output as data arrives.
func readFloat64s(r io.Reader, n int) ([]float64, error) {
	out := make([]float64, 0, min(n, readChunkBytes/8))
	var buf [readChunkBytes]byte
	for len(out) < n {
		want := min((n-len(out))*8, len(buf))
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, err
		}
		for i := 0; i < want; i += 8 {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[i:])))
		}
	}
	return out, nil
}
