package core

import (
	"container/heap"
	"math"
	"sync/atomic"

	"twinsearch/internal/mbts"
	"twinsearch/internal/series"
)

// SharedBound is a monotonically tightening upper bound on the global
// k-th best distance, shared by concurrent top-k traversals over
// different shards of one position space (internal/shard). Each
// traversal publishes its local k-th distance once its result heap
// fills — any k real candidates bound the global k-th from above — and
// every traversal prunes nodes whose Eq. 2 lower bound strictly exceeds
// the shared value. Pruning is only ever on strict inequality, so the
// merged top-k is deterministic regardless of publication timing.
type SharedBound struct {
	bits atomic.Uint64
}

// NewSharedBound returns a bound initialized to +Inf (nothing prunable).
func NewSharedBound() *SharedBound {
	b := &SharedBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Load returns the current bound.
func (b *SharedBound) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Tighten lowers the bound to d when d is smaller; larger values are
// ignored (the bound never loosens).
func (b *SharedBound) Tighten(d float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= d {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(d)) {
			return
		}
	}
}

// SearchTopK returns the k subsequences nearest to q under Chebyshev
// distance, sorted by ascending distance with ties broken by start
// position — a strict total order, so the result set is deterministic
// even when more than k windows share the k-th distance.
//
// This is an extension beyond the paper (which studies threshold
// queries): a best-first traversal ordered by the Eq. 2 node distance,
// which lower-bounds the true distance of everything below a node
// (Lemma 1), so the traversal can stop as soon as the nearest unexplored
// node is farther than the current k-th best — the classic optimal
// incremental NN strategy transplanted onto MBTS.
func (ix *Index) SearchTopK(q []float64, k int) []series.Match {
	return ix.SearchTopKShared(q, k, nil)
}

// SearchTopKShared is SearchTopK with an optional cross-traversal
// pruning bound (see SharedBound); internal/shard passes one bound to
// every work unit of a fanned-out query so each traversal benefits from
// the candidates the others have already admitted. A nil bound reduces
// to the plain single-index traversal. When shared pruning fires, the
// local result may omit matches that cannot survive the global k-way
// merge; the merged top-k is unaffected.
func (ix *Index) SearchTopKShared(q []float64, k int, shared *SharedBound) []series.Match {
	return ix.SearchTopKSharedFrom(ix.Root(), q, k, shared)
}

// SearchTopKSharedFrom is the top-k work unit: the best-first traversal
// restricted to one subtree. Disjoint subtrees sharing one bound admit
// exactly the candidates whole-shard traversals would (pruning is on
// strict inequality only), so the k-way merge of per-unit lists is
// byte-identical however the tree is split.
func (ix *Index) SearchTopKSharedFrom(sub Subtree, q []float64, k int, shared *SharedBound) []series.Match {
	if len(q) != ix.cfg.L {
		panic("core: query length mismatch")
	}
	if k <= 0 || sub.n == nil {
		return nil
	}

	best := &resultHeap{}
	kth := func() float64 { return kthThreshold(best, k, shared) }
	buf := make([]float64, ix.cfg.L)

	rootLB, ok := boundLB(sub.n.bounds.Upper, sub.n.bounds.Lower, q, kth())
	if !ok {
		return nil // a shared bound has already excluded this subtree
	}
	pq := &nodeQueue{{n: sub.n, lb: rootLB}}

	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		if t := kth(); t >= 0 && item.lb > t {
			break // every remaining node is at least this far
		}
		if !item.n.leaf {
			for _, c := range item.n.children {
				// Early-abandon the Eq. 2 scan against the current k-th
				// threshold: a prunable child is discarded partway through
				// its bounds instead of after a full-length pass.
				lb, ok := boundLB(c.bounds.Upper, c.bounds.Lower, q, kth())
				if !ok {
					continue
				}
				heap.Push(pq, nodeItem{n: c, lb: lb})
			}
			continue
		}
		for _, p := range item.n.positions {
			w := ix.ext.Extract(int(p), ix.cfg.L, buf)
			d := series.Chebyshev(q, w)
			m := series.Match{Start: int(p), Dist: d}
			if best.Len() >= k {
				// Full: admit only if strictly better than the current
				// worst under the (dist, start) total order.
				if !matchLess(m, (*best)[0]) {
					continue
				}
				heap.Pop(best)
			}
			heap.Push(best, m)
			if shared != nil && best.Len() >= k {
				shared.Tighten((*best)[0].Dist)
			}
		}
	}

	out := make([]series.Match, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(best).(series.Match)
	}
	return out
}

// kthThreshold returns the current pruning threshold of a top-k
// traversal — the smaller of the shared bound and the local k-th best —
// or -1 while nothing can be discarded yet. Shared by the pointer and
// frozen traversals so both prune identically.
func kthThreshold(best *resultHeap, k int, shared *SharedBound) float64 {
	t := math.Inf(1)
	if shared != nil {
		t = shared.Load()
	}
	if best.Len() >= k && (*best)[0].Dist < t {
		t = (*best)[0].Dist
	}
	if math.IsInf(t, 1) {
		return -1 // nothing can be discarded yet
	}
	return t
}

// boundLB computes a node's Eq. 2 lower bound for the query, abandoning
// against threshold t (t < 0 means no threshold): (lb, true) when the
// node survives, (0, false) when it prunes. Abandoning fires exactly
// when the full distance would exceed t (the running maximum only
// grows), so pruning decisions are identical to a full computation —
// only cheaper.
func boundLB(upper, lower, q []float64, t float64) (float64, bool) {
	if t >= 0 {
		return mbts.DistAbandonFlat(upper, lower, q, t)
	}
	return mbts.DistFlat(upper, lower, q), true
}

// matchLess is the strict total order on results: by distance, then by
// start position.
func matchLess(a, b series.Match) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Start < b.Start
}

// nodeItem pairs a node with its Eq. 2 lower bound for the query.
type nodeItem struct {
	n  *node
	lb float64
}

// nodeQueue is a min-heap on lower bound.
type nodeQueue []nodeItem

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].lb < q[j].lb }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(nodeItem)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// resultHeap is a max-heap under the (dist, start) total order, holding
// the best k matches with the worst on top.
type resultHeap []series.Match

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return matchLess(h[j], h[i]) }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(series.Match)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
