package core

import (
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
	"twinsearch/internal/sweepline"
)

func TestSearchPrefixMatchesSweepline(t *testing.T) {
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal} {
		ts := datasets.InsectN(41, 6000)
		ix, ext := buildOver(t, ts, mode, Config{L: 120})
		sw := sweepline.New(ext)
		for _, l := range []int{20, 60, 119, 120} {
			q := ext.ExtractCopy(2000, l)
			for _, eps := range []float64{0.2, 0.8, 2.5} {
				got, err := ix.SearchPrefix(q, eps)
				if err != nil {
					t.Fatalf("mode=%v l=%d: %v", mode, l, err)
				}
				want := sw.Search(q, eps)
				if len(got) != len(want) {
					t.Fatalf("mode=%v l=%d eps=%v: %d vs %d results", mode, l, eps, len(got), len(want))
				}
				for i := range want {
					if got[i].Start != want[i].Start {
						t.Fatalf("mode=%v l=%d: result %d differs", mode, l, i)
					}
				}
			}
		}
	}
}

func TestSearchPrefixTailCoverage(t *testing.T) {
	// A query matching only in the final L−l tail positions, which the
	// index does not cover.
	ts := datasets.Sine(1, 1000, 97, 1.5, 0.05)
	ix, ext := buildOver(t, ts, series.NormGlobal, Config{L: 100})
	// Query = the very last l-window of the series; at eps=0 only the
	// tail scan can find its exact position.
	l := 40
	q := ext.ExtractCopy(len(ts)-l, l)
	got, err := ix.SearchPrefix(q, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range got {
		if m.Start == len(ts)-l {
			found = true
		}
	}
	if !found {
		t.Fatal("tail-only match missed")
	}
}

func TestSearchPrefixErrors(t *testing.T) {
	ts := datasets.RandomWalk(2, 2000)
	ix, _ := buildOver(t, ts, series.NormGlobal, Config{L: 100})
	if _, err := ix.SearchPrefix(make([]float64, 101), 1); err == nil {
		t.Fatal("over-length query must fail")
	}
	if _, err := ix.SearchPrefix(nil, 1); err == nil {
		t.Fatal("empty query must fail")
	}
	per, _ := buildOver(t, ts, series.NormPerSubsequence, Config{L: 100})
	if _, err := per.SearchPrefix(make([]float64, 50), 1); err == nil {
		t.Fatal("per-subsequence mode must be rejected")
	}
}

func TestSearchApproxSubsetAndRecall(t *testing.T) {
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal, series.NormPerSubsequence} {
		ts := datasets.EEGN(17, 8000)
		ix, ext := buildOver(t, ts, mode, Config{L: 100})
		const budget = 4
		selfHits, queries := 0, 0
		for p := 50; p < 7800; p += 250 {
			queries++
			q := ext.ExtractCopy(p, 100)
			approx, st := ix.SearchApprox(q, 0.4, budget)
			exact := ix.Search(q, 0.4)
			exactSet := map[int]bool{}
			for _, m := range exact {
				exactSet[m.Start] = true
			}
			for _, m := range approx {
				if !exactSet[m.Start] {
					t.Fatalf("mode=%v: approximate result %d not in exact set", mode, m.Start)
				}
			}
			for _, m := range approx {
				if m.Start == p {
					selfHits++
					break
				}
			}
			if st.Candidates > budget*DefaultMaxCap {
				t.Fatalf("approximate search examined %d candidates (> budget×MaxCap)", st.Candidates)
			}
			if st.LeavesReached > budget {
				t.Fatalf("approximate search visited %d leaves (budget %d)", st.LeavesReached, budget)
			}
		}
		// No per-query guarantee — the nearest-leaf ordering just makes
		// misses rare at small budgets.
		if selfHits*10 < queries*8 {
			t.Fatalf("mode=%v: self-match recall %d/%d below 80%%", mode, selfHits, queries)
		}
	}
}

func TestSearchApproxEmptyIndex(t *testing.T) {
	ext := series.NewExtractor(datasets.RandomWalk(1, 100), series.NormGlobal)
	ix, _ := NewEmpty(ext, Config{L: 20})
	ms, st := ix.SearchApprox(make([]float64, 20), 1, 3)
	if ms != nil || st.Candidates != 0 {
		t.Fatal("empty index should return nothing")
	}
}
