package core

import (
	"fmt"
	"sort"

	"twinsearch/internal/mbts"
	"twinsearch/internal/series"
)

// BuildBulk constructs a TS-Index bottom-up instead of by repeated
// insertion — an extension in the spirit of iSAX 2.0's bulk loading,
// which the paper lists among the techniques its baselines employ but
// does not define for TS-Index itself.
//
// Windows are ordered by mean value (twins have means within ε of each
// other, so mean-sorted neighbours are likely co-members of tight
// MBTS), packed into full leaves, and parent levels are packed over the
// resulting node sequence until one root remains. The resulting tree
// satisfies exactly the invariants of the insertion build; the ablation
// benchmark (BenchmarkAblationBulkVsInsert) compares construction time
// and query speed of the two.
func BuildBulk(ext *series.Extractor, cfg Config) (*Index, error) {
	count := series.NumSubsequences(ext.Len(), cfg.L)
	return BuildBulkRange(ext, cfg, 0, count)
}

// BuildBulkRange bulk-loads a TS-Index over only the windows starting in
// [lo, hi) — the bulk counterpart of BuildRange, used by internal/shard
// to build each shard bottom-up.
func BuildBulkRange(ext *series.Extractor, cfg Config, lo, hi int) (*Index, error) {
	total := series.NumSubsequences(ext.Len(), cfg.L)
	if cfg.L > 0 && total > 0 && (lo < 0 || hi > total || lo >= hi) {
		return nil, fmt.Errorf("core: position range [%d, %d) invalid for %d windows", lo, hi, total)
	}
	ps := make([]int32, 0, max(hi-lo, 0))
	for p := lo; p < hi; p++ {
		ps = append(ps, int32(p))
	}
	return BuildBulkPositions(ext, cfg, ps)
}

// BuildBulkPositions bulk-loads a TS-Index over exactly the given
// window start positions — the bulk counterpart of BuildPositions, used
// by internal/shard when mean-sorted partitioning hands each shard a
// non-contiguous run of the position space.
func BuildBulkPositions(ext *series.Extractor, cfg Config, ps []int32) (*Index, error) {
	ix, err := NewEmpty(ext, cfg)
	if err != nil {
		return nil, err
	}
	cfg = ix.cfg // NewEmpty validated and filled in the defaults
	total := series.NumSubsequences(ext.Len(), cfg.L)
	if total == 0 {
		return nil, fmt.Errorf("core: series length %d shorter than subsequence length %d", ext.Len(), cfg.L)
	}
	count := len(ps)
	if count == 0 {
		return nil, fmt.Errorf("core: empty position set")
	}
	for _, p := range ps {
		if p < 0 || int(p) >= total {
			return nil, fmt.Errorf("core: position %d invalid for %d windows", p, total)
		}
	}

	// Order windows by mean. Per-subsequence normalization forces every
	// mean to zero; fall back to ordering by the first normalized value,
	// which is equally cheap and still groups look-alike windows.
	idx := make([]int, count)
	for i := range idx {
		idx[i] = i
	}
	keys := make([]float64, count)
	if ext.Mode() == series.NormPerSubsequence {
		buf := make([]float64, cfg.L)
		for i, p := range ps {
			keys[i] = ext.Extract(int(p), cfg.L, buf)[0]
		}
	} else {
		rolling := series.NewRolling(ext.Data())
		for i, p := range ps {
			keys[i] = rolling.Mean(int(p), cfg.L)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	order := make([]int32, count)
	for i, oi := range idx {
		order[i] = ps[oi]
	}

	// Pack leaves.
	buf := make([]float64, cfg.L)
	groups := packGroups(count, cfg.MaxCap)
	level := make([]*node, 0, len(groups))
	at := 0
	for _, g := range groups {
		leaf := &node{leaf: true, positions: make([]int32, g)}
		copy(leaf.positions, order[at:at+g])
		leaf.bounds = mbts.FromSequence(ext.Extract(int(leaf.positions[0]), cfg.L, buf))
		for _, p := range leaf.positions[1:] {
			leaf.bounds.ExpandToSequence(ext.Extract(int(p), cfg.L, buf))
		}
		level = append(level, leaf)
		at += g
	}
	ix.size = count
	ix.height = 1

	// Pack parent levels until a single root remains.
	for len(level) > 1 {
		groups := packGroups(len(level), cfg.MaxCap)
		next := make([]*node, 0, len(groups))
		at := 0
		for _, g := range groups {
			parent := &node{children: make([]*node, g)}
			copy(parent.children, level[at:at+g])
			parent.bounds = parent.children[0].bounds.Clone()
			for _, c := range parent.children[1:] {
				parent.bounds.ExpandToMBTS(c.bounds)
			}
			next = append(next, parent)
			at += g
		}
		level = next
		ix.height++
	}
	ix.root = level[0]
	return ix, nil
}

// packGroups splits count items into contiguous groups of at most max
// items each, sized as evenly as possible; with max ≥ 2·MinCap−1 every
// group of a multi-group packing holds ≥ ⌈max/2⌉ ≥ MinCap items.
func packGroups(count, max int) []int {
	g := (count + max - 1) / max
	base := count / g
	extra := count % g
	out := make([]int, g)
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}
