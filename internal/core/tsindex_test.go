package core

import (
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
	"twinsearch/internal/sweepline"
)

func buildOver(t *testing.T, ts []float64, mode series.NormMode, cfg Config) (*Index, *series.Extractor) {
	t.Helper()
	ext := series.NewExtractor(ts, mode)
	ix, err := Build(ext, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return ix, ext
}

func TestConfigValidation(t *testing.T) {
	ext := series.NewExtractor(datasets.RandomWalk(1, 200), series.NormGlobal)
	if _, err := Build(ext, Config{L: 0}); err == nil {
		t.Fatal("L=0 must fail")
	}
	if _, err := Build(ext, Config{L: 50, MinCap: 0, MaxCap: 30}); err != nil {
		t.Fatalf("MinCap default should apply: %v", err)
	}
	if _, err := Build(ext, Config{L: 50, MinCap: -2, MaxCap: 30}); err == nil {
		t.Fatal("negative MinCap must fail")
	}
	if _, err := Build(ext, Config{L: 50, MinCap: 10, MaxCap: 18}); err == nil {
		t.Fatal("MaxCap < 2·MinCap−1 must fail")
	}
	if _, err := Build(ext, Config{L: 50, MinCap: 10, MaxCap: 19}); err != nil {
		t.Fatalf("MaxCap = 2·MinCap−1 must pass: %v", err)
	}
	if _, err := Build(ext, Config{L: 500}); err == nil {
		t.Fatal("L > n must fail")
	}
}

func TestMatchesSweeplineAllModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		ts   []float64
		mode series.NormMode
		eps  []float64
	}{
		{"walk-raw", datasets.RandomWalk(2, 4000), series.NormNone, []float64{0.5, 2, 5}},
		{"walk-global", datasets.RandomWalk(2, 4000), series.NormGlobal, []float64{0.1, 0.3, 0.6}},
		{"walk-persub", datasets.RandomWalk(2, 4000), series.NormPerSubsequence, []float64{0.2, 0.5}},
		{"sine-global", datasets.Sine(4, 4000, 150, 2, 0.1), series.NormGlobal, []float64{0.1, 0.3}},
		{"eeg-persub", datasets.EEGN(6, 6000), series.NormPerSubsequence, []float64{0.3, 0.8}},
		{"insect-raw", datasets.InsectN(5, 5000), series.NormNone, []float64{1, 3}},
	} {
		ix, ext := buildOver(t, tc.ts, tc.mode, Config{L: 80})
		sw := sweepline.New(ext)
		q := ext.ExtractCopy(1000, 80)
		for _, eps := range tc.eps {
			got := ix.Search(q, eps)
			want := sw.Search(q, eps)
			if len(got) != len(want) {
				t.Fatalf("%s eps=%v: %d matches, want %d", tc.name, eps, len(got), len(want))
			}
			for i := range want {
				if got[i].Start != want[i].Start {
					t.Fatalf("%s eps=%v: position mismatch at %d", tc.name, eps, i)
				}
			}
		}
	}
}

func TestTreeGrowsInHeight(t *testing.T) {
	ts := datasets.RandomWalk(3, 5000)
	ix, _ := buildOver(t, ts, series.NormGlobal, Config{L: 50})
	if ix.Height() < 3 {
		t.Fatalf("5k windows at Mc=30 should give height ≥ 3, got %d", ix.Height())
	}
	if ix.Len() != series.NumSubsequences(len(ts), 50) {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.NodeCount() <= ix.Len()/31 {
		t.Fatalf("NodeCount = %d too small", ix.NodeCount())
	}
	if ix.L() != 50 {
		t.Fatalf("L = %d", ix.L())
	}
	if ix.Extractor() == nil {
		t.Fatal("Extractor accessor broken")
	}
}

func TestIncrementalInsertInvariants(t *testing.T) {
	// Invariants must hold at every prefix of the insertion sequence,
	// not just at the end.
	ts := datasets.InsectN(11, 800)
	ext := series.NewExtractor(ts, series.NormGlobal)
	ix, err := NewEmpty(ext, Config{L: 40, MinCap: 2, MaxCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	count := series.NumSubsequences(len(ts), 40)
	for p := 0; p < count; p++ {
		ix.Insert(p)
		if p%50 == 0 || p == count-1 {
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", p+1, err)
			}
		}
	}
	for _, p := range []int{0, 1, count / 2, count - 1} {
		if !ix.verifyReachable(p) {
			t.Fatalf("position %d unreachable", p)
		}
	}
}

func TestTinyCapacitiesDeepTree(t *testing.T) {
	ts := datasets.Sine(7, 1200, 90, 1.5, 0.2)
	ix, ext := buildOver(t, ts, series.NormGlobal, Config{L: 30, MinCap: 2, MaxCap: 4})
	if ix.Height() < 4 {
		t.Fatalf("tiny caps should give a deep tree, got height %d", ix.Height())
	}
	q := ext.ExtractCopy(200, 30)
	got := ix.Search(q, 0.25)
	want := sweepline.New(ext).Search(q, 0.25)
	if len(got) != len(want) {
		t.Fatalf("deep tree search: %d vs %d", len(got), len(want))
	}
}

func TestSearchStatsFunnel(t *testing.T) {
	ts := datasets.EEGN(8, 20000)
	ix, ext := buildOver(t, ts, series.NormGlobal, Config{L: 100})
	q := ext.ExtractCopy(5000, 100)
	ms, st := ix.SearchStats(q, 0.2)
	if st.NodesPruned == 0 {
		t.Fatal("tight threshold should prune")
	}
	if st.Candidates >= ix.Len() {
		t.Fatal("filter admitted everything")
	}
	if st.Results != len(ms) {
		t.Fatal("Results counter mismatch")
	}
	if st.LeavesReached == 0 || st.NodesVisited == 0 {
		t.Fatal("counters not recorded")
	}
}

func TestEmptyIndexSearch(t *testing.T) {
	ext := series.NewExtractor(datasets.RandomWalk(1, 100), series.NormGlobal)
	ix, err := NewEmpty(ext, Config{L: 20})
	if err != nil {
		t.Fatal(err)
	}
	if ms := ix.Search(make([]float64, 20), 1); ms != nil {
		t.Fatal("empty index must return nil")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryLengthPanic(t *testing.T) {
	ix, _ := buildOver(t, datasets.RandomWalk(1, 500), series.NormGlobal, Config{L: 50})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	ix.Search(make([]float64, 49), 1)
}

func TestSelfQueryAlwaysFound(t *testing.T) {
	ts := datasets.InsectN(7, 10000)
	for _, mode := range []series.NormMode{series.NormNone, series.NormGlobal, series.NormPerSubsequence} {
		ix, ext := buildOver(t, ts, mode, Config{L: 100})
		for _, p := range []int{0, 1234, 9900} {
			q := ext.ExtractCopy(p, 100)
			found := false
			for _, m := range ix.Search(q, 0) {
				if m.Start == p {
					found = true
				}
			}
			if !found {
				t.Fatalf("mode=%v: window %d not found by its own query", mode, p)
			}
		}
	}
}

func TestHugeEpsilonReturnsEverything(t *testing.T) {
	ts := datasets.RandomWalk(4, 2000)
	ix, ext := buildOver(t, ts, series.NormGlobal, Config{L: 50})
	q := ext.ExtractCopy(100, 50)
	ms, st := ix.SearchStats(q, 1e9)
	if len(ms) != ix.Len() {
		t.Fatalf("huge eps must match everything: %d vs %d", len(ms), ix.Len())
	}
	if st.NodesPruned != 0 {
		t.Fatal("nothing should be pruned at huge eps")
	}
}

func TestDiagnostics(t *testing.T) {
	ts := datasets.RandomWalk(5, 3000)
	ix, _ := buildOver(t, ts, series.NormGlobal, Config{L: 50})
	if f := ix.LeafFill(); f < float64(ix.cfg.MinCap) || f > float64(ix.cfg.MaxCap) {
		t.Fatalf("LeafFill = %v outside capacity band", f)
	}
	if w := ix.MeanLeafWidth(); w <= 0 {
		t.Fatalf("MeanLeafWidth = %v", w)
	}
	if ix.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes must be positive")
	}
	small, _ := buildOver(t, datasets.RandomWalk(5, 600), series.NormGlobal, Config{L: 50})
	if small.MemoryBytes() >= ix.MemoryBytes() {
		t.Fatal("memory accounting flat")
	}
}
