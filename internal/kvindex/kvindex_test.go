package kvindex

import (
	"testing"

	"twinsearch/internal/datasets"
	"twinsearch/internal/series"
	"twinsearch/internal/sweepline"
)

func buildOver(t *testing.T, ts []float64, mode series.NormMode, l int, exact bool) (*Index, *series.Extractor) {
	t.Helper()
	ext := series.NewExtractor(ts, mode)
	ix, err := Build(ext, Config{L: l, ExactMeanFilter: exact})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix, ext
}

func TestRejectsPerSubsequenceNorm(t *testing.T) {
	ext := series.NewExtractor(datasets.RandomWalk(1, 500), series.NormPerSubsequence)
	if _, err := Build(ext, Config{L: 50}); err != ErrPerSubsequenceNorm {
		t.Fatalf("err = %v, want ErrPerSubsequenceNorm", err)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	ext := series.NewExtractor(datasets.RandomWalk(1, 100), series.NormNone)
	if _, err := Build(ext, Config{L: 0}); err == nil {
		t.Fatal("L=0 must fail")
	}
	if _, err := Build(ext, Config{L: 101}); err == nil {
		t.Fatal("L > n must fail")
	}
}

func TestMatchesSweepline(t *testing.T) {
	for _, tc := range []struct {
		name string
		ts   []float64
		mode series.NormMode
		eps  []float64
	}{
		{"walk-raw", datasets.RandomWalk(2, 4000), series.NormNone, []float64{0.5, 2, 5}},
		{"walk-global", datasets.RandomWalk(2, 4000), series.NormGlobal, []float64{0.1, 0.3, 0.6}},
		{"sine-global", datasets.Sine(4, 4000, 150, 2, 0.1), series.NormGlobal, []float64{0.1, 0.3}},
		{"insect-raw", datasets.InsectN(5, 5000), series.NormNone, []float64{1, 3}},
	} {
		for _, exact := range []bool{true, false} {
			ix, ext := buildOver(t, tc.ts, tc.mode, 80, exact)
			sw := sweepline.New(ext)
			q := ext.ExtractCopy(1000, 80)
			for _, eps := range tc.eps {
				got := ix.Search(q, eps)
				want := sw.Search(q, eps)
				if len(got) != len(want) {
					t.Fatalf("%s exact=%v eps=%v: %d matches, want %d", tc.name, exact, eps, len(got), len(want))
				}
				for i := range want {
					if got[i].Start != want[i].Start {
						t.Fatalf("%s exact=%v eps=%v: position mismatch at %d", tc.name, exact, eps, i)
					}
				}
			}
		}
	}
}

func TestExactMeanFilterReducesVerification(t *testing.T) {
	ts := datasets.RandomWalk(7, 20000)
	ixExact, ext := buildOver(t, ts, series.NormGlobal, 100, true)
	ixPlain, err := Build(ext, Config{L: 100, ExactMeanFilter: false})
	if err != nil {
		t.Fatal(err)
	}
	q := ext.ExtractCopy(5000, 100)
	_, stExact := ixExact.SearchStats(q, 0.3)
	_, stPlain := ixPlain.SearchStats(q, 0.3)
	if stExact.Verified > stPlain.Verified {
		t.Fatalf("exact filter verified more (%d) than plain (%d)", stExact.Verified, stPlain.Verified)
	}
	if stExact.Candidates != stPlain.Candidates {
		t.Fatalf("bucket candidates should agree: %d vs %d", stExact.Candidates, stPlain.Candidates)
	}
}

func TestCandidateSupersetOfResults(t *testing.T) {
	ts := datasets.InsectN(9, 10000)
	ix, ext := buildOver(t, ts, series.NormGlobal, 100, true)
	q := ext.ExtractCopy(2500, 100)
	ms, st := ix.SearchStats(q, 0.5)
	if st.Results != len(ms) {
		t.Fatal("Results counter mismatch")
	}
	if st.Candidates < st.Verified || st.Verified < st.Results {
		t.Fatalf("funnel violated: %d candidates, %d verified, %d results", st.Candidates, st.Verified, st.Results)
	}
	if st.Buckets == 0 {
		t.Fatal("no buckets touched yet query matched itself")
	}
}

func TestResultsSorted(t *testing.T) {
	ts := datasets.Sine(11, 8000, 100, 1, 0.05)
	ix, ext := buildOver(t, ts, series.NormGlobal, 100, true)
	q := ext.ExtractCopy(300, 100)
	ms := ix.Search(q, 0.4)
	for i := 1; i < len(ms); i++ {
		if ms[i].Start <= ms[i-1].Start {
			t.Fatal("results must be sorted and unique")
		}
	}
	if len(ms) < 2 {
		t.Fatalf("periodic series should yield many twins, got %d", len(ms))
	}
}

func TestConstantSeries(t *testing.T) {
	ts := make([]float64, 500)
	for i := range ts {
		ts[i] = 7
	}
	ix, ext := buildOver(t, ts, series.NormNone, 50, true)
	q := ext.ExtractCopy(0, 50)
	ms := ix.Search(q, 0.1)
	if len(ms) != series.NumSubsequences(500, 50) {
		t.Fatalf("constant series: every window is a twin, got %d", len(ms))
	}
}

func TestQueryLengthPanic(t *testing.T) {
	ix, _ := buildOver(t, datasets.RandomWalk(1, 500), series.NormNone, 50, true)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong query length")
		}
	}()
	ix.Search(make([]float64, 49), 1)
}

func TestAccessors(t *testing.T) {
	ts := datasets.RandomWalk(3, 1000)
	ix, _ := buildOver(t, ts, series.NormNone, 100, true)
	if ix.Len() != series.NumSubsequences(1000, 100) {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.L() != 100 {
		t.Fatalf("L = %d", ix.L())
	}
	if ix.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes must be positive")
	}
	if ix.AuxiliaryBytes() <= 0 {
		t.Fatal("AuxiliaryBytes must be positive with exact filter")
	}
	if ix.IntervalCount() <= 0 {
		t.Fatal("IntervalCount must be positive")
	}
	ixPlain, _ := Build(series.NewExtractor(ts, series.NormNone), Config{L: 100})
	if ixPlain.AuxiliaryBytes() != 0 {
		t.Fatal("AuxiliaryBytes should be 0 without exact filter")
	}
}

func TestIntervalCompression(t *testing.T) {
	// A smooth series files long runs of consecutive positions under the
	// same key, so intervals must be far fewer than windows.
	ts := datasets.Sine(13, 20000, 5000, 10, 0)
	ix, _ := buildOver(t, ts, series.NormNone, 100, false)
	if ix.IntervalCount() >= ix.Len()/2 {
		t.Fatalf("interval compression ineffective: %d intervals for %d windows", ix.IntervalCount(), ix.Len())
	}
}
