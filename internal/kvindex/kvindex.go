// Package kvindex adapts KV-Index [Wu et al. 2019, "KV-Match"] to twin
// subsequence search exactly as the paper's §4.1 describes: every
// ℓ-length window of the series is summarized by its mean value; an
// inverted index maps ranges of mean values (keys) to intervals of
// window start positions. The twin filter rests on the mean bound — if
// d∞(S, S′) ≤ ε then |mean(S) − mean(S′)| ≤ ε — so the candidates for a
// query with mean µq are the positions filed under keys intersecting
// [µq−ε, µq+ε].
//
// KV-Index cannot be built over per-subsequence-normalized data: every
// window mean is zero and the filter degenerates (§4.1); Build returns
// ErrPerSubsequenceNorm in that mode.
package kvindex

import (
	"errors"
	"fmt"
	"math"

	"twinsearch/internal/series"
)

// ErrPerSubsequenceNorm is returned by Build when the extractor
// z-normalizes each subsequence individually.
var ErrPerSubsequenceNorm = errors.New("kvindex: mean filter is void under per-subsequence normalization")

// DefaultKeyCount is the number of equi-width mean buckets.
const DefaultKeyCount = 256

// Config parameterizes index construction.
type Config struct {
	// L is the indexed subsequence length.
	L int
	// KeyCount is the number of equi-width mean-range keys
	// (DefaultKeyCount when 0).
	KeyCount int
	// ExactMeanFilter enables an O(1) per-candidate mean check (via
	// prefix sums) before full verification, pruning candidates that
	// share a boundary bucket with the query range but fall outside
	// [µq−ε, µq+ε]. KV-Match applies the analogous refinement; disable
	// to measure the raw bucket filter.
	ExactMeanFilter bool
}

// interval is an inclusive run [Start, End] of window start positions.
type interval struct {
	Start, End int32
}

// Index is the built inverted index.
type Index struct {
	ext     *series.Extractor
	cfg     Config
	rolling *series.Rolling
	minMean float64
	width   float64 // bucket width
	buckets [][]interval
	size    int // indexed windows
}

// Stats describes the work a search performed.
type Stats struct {
	Candidates int // positions pulled from qualifying buckets
	Verified   int // positions fully verified (after the mean prefilter)
	Results    int
	Buckets    int // buckets touched
}

// Build constructs a KV-Index over all ℓ-length windows of the
// extractor's series.
func Build(ext *series.Extractor, cfg Config) (*Index, error) {
	if ext.Mode() == series.NormPerSubsequence {
		return nil, ErrPerSubsequenceNorm
	}
	if cfg.L <= 0 {
		return nil, fmt.Errorf("kvindex: invalid subsequence length %d", cfg.L)
	}
	n := ext.Len()
	count := series.NumSubsequences(n, cfg.L)
	if count == 0 {
		return nil, fmt.Errorf("kvindex: series length %d shorter than subsequence length %d", n, cfg.L)
	}
	if cfg.KeyCount <= 0 {
		cfg.KeyCount = DefaultKeyCount
	}

	ix := &Index{
		ext:     ext,
		cfg:     cfg,
		rolling: series.NewRolling(ext.Data()),
		size:    count,
	}

	// Pass 1: mean range.
	minMean, maxMean := math.Inf(1), math.Inf(-1)
	for p := 0; p < count; p++ {
		mu := ix.rolling.Mean(p, cfg.L)
		if mu < minMean {
			minMean = mu
		}
		if mu > maxMean {
			maxMean = mu
		}
	}
	ix.minMean = minMean
	span := maxMean - minMean
	if span <= 0 {
		// All windows share one mean; a single bucket holds everything.
		span = 1
	}
	ix.width = span / float64(cfg.KeyCount)

	// Pass 2: fill buckets, merging consecutive positions into intervals.
	ix.buckets = make([][]interval, cfg.KeyCount)
	for p := 0; p < count; p++ {
		b := ix.bucketOf(ix.rolling.Mean(p, cfg.L))
		list := ix.buckets[b]
		if k := len(list); k > 0 && list[k-1].End == int32(p-1) {
			list[k-1].End = int32(p)
		} else {
			list = append(list, interval{int32(p), int32(p)})
		}
		ix.buckets[b] = list
	}
	return ix, nil
}

func (ix *Index) bucketOf(mu float64) int {
	b := int((mu - ix.minMean) / ix.width)
	if b < 0 {
		b = 0
	}
	if b >= len(ix.buckets) {
		b = len(ix.buckets) - 1
	}
	return b
}

// Len returns the number of indexed windows.
func (ix *Index) Len() int { return ix.size }

// L returns the indexed subsequence length.
func (ix *Index) L() int { return ix.cfg.L }

// Search returns all twin subsequences of q at threshold eps, in start
// order. q must be in the extractor's value space and len(q) must equal
// the indexed length.
func (ix *Index) Search(q []float64, eps float64) []series.Match {
	ms, _ := ix.SearchStats(q, eps)
	return ms
}

// SearchStats is Search with filter/verification counters.
func (ix *Index) SearchStats(q []float64, eps float64) ([]series.Match, Stats) {
	if len(q) != ix.cfg.L {
		panic(fmt.Sprintf("kvindex: query length %d, index built for %d", len(q), ix.cfg.L))
	}
	muQ := series.Mean(q)
	lo, hi := ix.bucketOf(muQ-eps), ix.bucketOf(muQ+eps)

	var st Stats
	var out []series.Match
	ver := series.NewVerifier(ix.ext, q, eps)
	for b := lo; b <= hi; b++ {
		if len(ix.buckets[b]) == 0 {
			continue
		}
		st.Buckets++
		for _, iv := range ix.buckets[b] {
			for p := iv.Start; p <= iv.End; p++ {
				st.Candidates++
				if ix.cfg.ExactMeanFilter {
					mu := ix.rolling.Mean(int(p), ix.cfg.L)
					if mu < muQ-eps || mu > muQ+eps {
						continue
					}
				}
				st.Verified++
				if ver.Verify(int(p)) {
					out = append(out, series.Match{Start: int(p), Dist: -1})
				}
			}
		}
	}
	// Buckets are scanned in key order, so positions arrive out of start
	// order; restore the canonical ordering.
	series.SortMatches(out)
	st.Results = len(out)
	return out, st
}

// MemoryBytes estimates the heap footprint of the index structure alone
// (buckets and intervals — the paper's Fig. 8a accounting: the raw
// series lives on disk and rolling sums are construction scaffolding
// kept only for the optional exact-mean filter, reported separately by
// AuxiliaryBytes).
func (ix *Index) MemoryBytes() int {
	bytes := 24 * len(ix.buckets) // slice headers
	for _, b := range ix.buckets {
		bytes += 8 * len(b)
	}
	return bytes + 64
}

// AuxiliaryBytes reports the prefix-sum arrays retained for the
// exact-mean filter.
func (ix *Index) AuxiliaryBytes() int {
	if !ix.cfg.ExactMeanFilter {
		return 0
	}
	return 16 * (ix.rolling.Len() + 1)
}

// IntervalCount returns the total number of stored intervals, a proxy
// for how fragmented the inverted lists are.
func (ix *Index) IntervalCount() int {
	n := 0
	for _, b := range ix.buckets {
		n += len(b)
	}
	return n
}
