// Package paa implements Piecewise Aggregate Approximation
// [Keogh et al. 2001]: a sequence of length l is split into m segments
// along the time axis and each segment is replaced by its mean value.
// PAA underlies the SAX representation (and hence the iSAX index) and
// carries the per-segment mean bound that makes iSAX usable for twin
// search: if d∞(S, S′) ≤ ε then every pair of time-aligned segment means
// differs by at most ε.
package paa

import "fmt"

// Transform returns the m-segment PAA of s. When m does not divide
// len(s), boundary points are split fractionally between the two
// adjacent segments (the standard PAA generalization), so the transform
// is exact for any m ≤ len(s).
func Transform(s []float64, m int) []float64 {
	out := make([]float64, m)
	TransformTo(out, s)
	return out
}

// TransformTo writes the len(dst)-segment PAA of s into dst.
// It panics when the segment count is invalid; use Check at boundaries.
func TransformTo(dst, s []float64) {
	m, l := len(dst), len(s)
	if err := Check(l, m); err != nil {
		panic("paa: " + err.Error())
	}
	if m == l {
		copy(dst, s)
		return
	}
	if l%m == 0 {
		// Fast path: equal integer-width segments.
		w := l / m
		idx := 0
		for seg := 0; seg < m; seg++ {
			var sum float64
			for k := 0; k < w; k++ {
				sum += s[idx]
				idx++
			}
			dst[seg] = sum / float64(w)
		}
		return
	}
	// General path: segment boundaries fall between samples; each sample
	// i contributes to segment(s) overlapping [i, i+1) in "time units"
	// scaled so the series spans [0, m).
	fm, fl := float64(m), float64(l)
	for seg := range dst {
		dst[seg] = 0
	}
	for i := 0; i < l; i++ {
		// Sample i covers [i*m/l, (i+1)*m/l).
		start := float64(i) * fm / fl
		end := float64(i+1) * fm / fl
		s0 := int(start)
		if s0 >= m {
			s0 = m - 1
		}
		s1 := int(end)
		if end == float64(s1) {
			s1--
		}
		if s1 >= m {
			s1 = m - 1
		}
		if s0 == s1 {
			dst[s0] += s[i] * (end - start)
		} else {
			// The sample straddles the boundary between s0 and s1.
			mid := float64(s0 + 1)
			dst[s0] += s[i] * (mid - start)
			dst[s1] += s[i] * (end - mid)
		}
	}
	// No final division: in the scaled coordinates each segment has
	// width exactly 1, so the per-sample overlap weights already sum to 1
	// and dst[seg] is the weighted segment mean.
}

// Check validates a (sequence length, segment count) pair.
func Check(l, m int) error {
	if m <= 0 {
		return fmt.Errorf("paa: segment count %d must be positive", m)
	}
	if l < m {
		return fmt.Errorf("paa: sequence length %d shorter than %d segments", l, m)
	}
	return nil
}

// SegmentBounds returns the half-open sample range [lo, hi) that segment
// seg of an l-length sequence under m segments draws weight from, for
// callers that need to know which raw samples influence a segment.
func SegmentBounds(l, m, seg int) (lo, hi int) {
	lo = seg * l / m
	hi = (seg + 1) * l / m
	if (seg+1)*l%m != 0 {
		hi++
	}
	if hi > l {
		hi = l
	}
	return lo, hi
}
