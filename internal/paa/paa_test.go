package paa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"twinsearch/internal/series"
)

func TestTransformDivisible(t *testing.T) {
	s := []float64{1, 1, 2, 2, 3, 3}
	got := Transform(s, 3)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Transform = %v, want %v", got, want)
		}
	}
}

func TestTransformIdentity(t *testing.T) {
	s := []float64{3, 1, 4, 1, 5}
	got := Transform(s, 5)
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("m == l should be identity, got %v", got)
		}
	}
}

func TestTransformSingleSegment(t *testing.T) {
	s := []float64{2, 4, 6, 8}
	got := Transform(s, 1)
	if math.Abs(got[0]-5) > 1e-12 {
		t.Fatalf("single segment = %v, want 5", got[0])
	}
}

func TestTransformFractional(t *testing.T) {
	// l=5, m=2: segment 0 covers samples 0,1 and half of 2;
	// segment 1 covers half of 2 and samples 3,4.
	s := []float64{10, 10, 4, 2, 2}
	got := Transform(s, 2)
	want0 := (10 + 10 + 4*0.5) / 2.5
	want1 := (4*0.5 + 2 + 2) / 2.5
	if math.Abs(got[0]-want0) > 1e-9 || math.Abs(got[1]-want1) > 1e-9 {
		t.Fatalf("fractional PAA = %v, want [%v %v]", got, want0, want1)
	}
}

func TestTransformConstant(t *testing.T) {
	s := make([]float64, 17)
	for i := range s {
		s[i] = 3.5
	}
	for m := 1; m <= 17; m++ {
		for _, v := range Transform(s, m) {
			if math.Abs(v-3.5) > 1e-9 {
				t.Fatalf("constant series PAA must be constant (m=%d): %v", m, v)
			}
		}
	}
}

func TestTransformPreservesGlobalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 100; iter++ {
		l := 2 + rng.Intn(100)
		m := 1 + rng.Intn(l)
		s := make([]float64, l)
		for i := range s {
			s[i] = rng.NormFloat64() * 5
		}
		p := Transform(s, m)
		// PAA segment means, weighted by equal segment widths, preserve
		// the global mean exactly (each sample's weight totals m/l).
		if math.Abs(series.Mean(p)-series.Mean(s)) > 1e-9 {
			t.Fatalf("iter %d (l=%d m=%d): PAA mean %v != series mean %v",
				iter, l, m, series.Mean(p), series.Mean(s))
		}
	}
}

func TestCheck(t *testing.T) {
	if err := Check(10, 0); err == nil {
		t.Fatal("m=0 must fail")
	}
	if err := Check(10, -1); err == nil {
		t.Fatal("m<0 must fail")
	}
	if err := Check(3, 4); err == nil {
		t.Fatal("l<m must fail")
	}
	if err := Check(4, 4); err != nil {
		t.Fatalf("l=m must pass: %v", err)
	}
}

func TestTransformToPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for invalid m")
		}
	}()
	TransformTo(make([]float64, 5), []float64{1, 2})
}

func TestSegmentBounds(t *testing.T) {
	// Bounds must cover [0, l) without gaps.
	for _, c := range []struct{ l, m int }{{10, 3}, {100, 7}, {5, 5}, {64436, 10}} {
		prevHi := 0
		for seg := 0; seg < c.m; seg++ {
			lo, hi := SegmentBounds(c.l, c.m, seg)
			if lo > prevHi {
				t.Fatalf("l=%d m=%d seg=%d: gap (lo=%d prevHi=%d)", c.l, c.m, seg, lo, prevHi)
			}
			if hi <= lo {
				t.Fatalf("l=%d m=%d seg=%d: empty range", c.l, c.m, seg)
			}
			prevHi = hi
		}
		if prevHi != c.l {
			t.Fatalf("l=%d m=%d: coverage ends at %d", c.l, c.m, prevHi)
		}
	}
}

// Property (paper §4.2): per-segment PAA means of twins differ by ≤ ε.
// This is the bound that justifies the iSAX adaptation.
func TestSegmentMeanBound(t *testing.T) {
	f := func(raw []float64, mRaw uint8) bool {
		if len(raw) < 4 {
			return true
		}
		for _, v := range raw {
			if v > 1e100 || v < -1e100 {
				return true
			}
		}
		l := len(raw) / 2
		a, b := raw[:l], raw[l:2*l]
		m := 1 + int(mRaw)%l
		eps := series.Chebyshev(a, b)
		pa, pb := Transform(a, m), Transform(b, m)
		for i := range pa {
			if math.Abs(pa[i]-pb[i]) > eps+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: PAA of each segment stays within [min, max] of the samples it
// draws from (it is a convex combination).
func TestSegmentMeanWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 200; iter++ {
		l := 2 + rng.Intn(60)
		m := 1 + rng.Intn(l)
		s := make([]float64, l)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		p := Transform(s, m)
		for seg := 0; seg < m; seg++ {
			lo, hi := SegmentBounds(l, m, seg)
			mn, mx := series.MinMax(s[lo:hi])
			if p[seg] < mn-1e-9 || p[seg] > mx+1e-9 {
				t.Fatalf("iter %d seg %d: PAA %v outside sample range [%v, %v]", iter, seg, p[seg], mn, mx)
			}
		}
	}
}
