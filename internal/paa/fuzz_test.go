package paa

import (
	"math"
	"testing"
)

// FuzzTransform checks the PAA invariants on arbitrary inputs: every
// segment mean is a convex combination of the samples it covers, so it
// must lie within [min, max] of the input (when finite), for every
// valid segment count.
func FuzzTransform(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 127, 64, 32})

	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		s := make([]float64, len(raw))
		for i, b := range raw {
			s[i] = (float64(b) - 128) / 16
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for m := 1; m <= len(s); m++ {
			p := Transform(s, m)
			if len(p) != m {
				t.Fatalf("m=%d: got %d segments", m, len(p))
			}
			for seg, v := range p {
				if v < lo-1e-9 || v > hi+1e-9 {
					t.Fatalf("m=%d seg=%d: %v outside [%v, %v]", m, seg, v, lo, hi)
				}
			}
		}
	})
}
