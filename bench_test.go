package twinsearch_test

// Benchmarks mirroring the paper's evaluation, one family per figure
// (see DESIGN.md §4 for the mapping and EXPERIMENTS.md for recorded
// paper-vs-measured shapes).
//
// These benches run on reduced dataset sizes with in-memory
// verification so `go test -bench=.` finishes in minutes; the
// full-shape reproduction with the paper's disk-resident setup is
// `go run ./cmd/tsbench` (which also prints the per-figure tables).

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"twinsearch"
	"twinsearch/internal/core"
	"twinsearch/internal/datasets"
	"twinsearch/internal/exec"
	"twinsearch/internal/harness"
	"twinsearch/internal/isax"
	"twinsearch/internal/kvindex"
	"twinsearch/internal/series"
	"twinsearch/internal/shard"
	"twinsearch/internal/sweepline"
)

// Bench-scale stand-ins: same generators as the harness, shorter runs.
const (
	benchInsectLen = 20000
	benchEEGLen    = 40000
	benchQueries   = 10
)

type benchSetup struct {
	name string
	data []float64
	eps  []float64 // the dataset's Table 1 normalized grid
	def  float64   // default threshold
}

var benchSetups = []benchSetup{
	{"Insect", datasets.InsectN(1, benchInsectLen), harness.InsectEpsNorm, harness.InsectDefaultEpsNorm},
	{"EEG", datasets.EEGN(2, benchEEGLen), harness.EEGEpsNorm, harness.EEGDefaultEpsNorm},
}

// engine caches keyed by (dataset, mode, method, l) so builds don't
// repeat across sub-benchmarks. Benchmarks run sequentially.
var (
	extCache = map[string]*series.Extractor{}
	tsCache  = map[string]*core.Index{}
	isxCache = map[string]*isax.Index{}
	kvCache  = map[string]*kvindex.Index{}
)

func benchExt(ds benchSetup, mode series.NormMode) *series.Extractor {
	key := fmt.Sprintf("%s/%d", ds.name, mode)
	if e, ok := extCache[key]; ok {
		return e
	}
	e := series.NewExtractor(ds.data, mode)
	extCache[key] = e
	return e
}

func benchTS(b *testing.B, ds benchSetup, mode series.NormMode, l int) *core.Index {
	key := fmt.Sprintf("%s/%d/%d", ds.name, mode, l)
	if ix, ok := tsCache[key]; ok {
		return ix
	}
	ix, err := core.Build(benchExt(ds, mode), core.Config{L: l})
	if err != nil {
		b.Fatal(err)
	}
	tsCache[key] = ix
	return ix
}

func benchISAX(b *testing.B, ds benchSetup, mode series.NormMode, l int) *isax.Index {
	key := fmt.Sprintf("%s/%d/%d", ds.name, mode, l)
	if ix, ok := isxCache[key]; ok {
		return ix
	}
	ix, err := isax.Build(benchExt(ds, mode), isax.Config{L: l, Segments: harness.DefaultM})
	if err != nil {
		b.Fatal(err)
	}
	isxCache[key] = ix
	return ix
}

func benchKV(b *testing.B, ds benchSetup, mode series.NormMode, l int) *kvindex.Index {
	key := fmt.Sprintf("%s/%d/%d", ds.name, mode, l)
	if ix, ok := kvCache[key]; ok {
		return ix
	}
	ix, err := kvindex.Build(benchExt(ds, mode), kvindex.Config{L: l})
	if err != nil {
		b.Fatal(err)
	}
	kvCache[key] = ix
	return ix
}

func benchWorkload(ds benchSetup, ext *series.Extractor, l int) [][]float64 {
	raw := datasets.Queries(ds.data, 7, benchQueries, l)
	out := make([][]float64, len(raw))
	for i, q := range raw {
		out[i] = ext.TransformQuery(q)
	}
	return out
}

// runQueries drives one searcher over the workload; the reported value
// is ns per query (each b.N iteration runs the whole workload).
func runQueries(b *testing.B, search func(q []float64, eps float64) int, qs [][]float64, eps float64) {
	b.Helper()
	var total int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			total += search(q, eps)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/float64(b.N)/float64(len(qs)), "results/query")
}

// --- Figure 4: query time vs ε, global z-normalization -----------------

func BenchmarkFig4QueryVsEps(b *testing.B) {
	for _, ds := range benchSetups {
		ext := benchExt(ds, series.NormGlobal)
		qs := benchWorkload(ds, ext, harness.DefaultL)
		for _, eps := range ds.eps {
			eps := eps
			b.Run(fmt.Sprintf("%s/Sweepline/eps=%g", ds.name, eps), func(b *testing.B) {
				sw := sweepline.New(ext)
				runQueries(b, func(q []float64, e float64) int { return len(sw.Search(q, e)) }, qs, eps)
			})
			b.Run(fmt.Sprintf("%s/KV-Index/eps=%g", ds.name, eps), func(b *testing.B) {
				ix := benchKV(b, ds, series.NormGlobal, harness.DefaultL)
				runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, eps)
			})
			b.Run(fmt.Sprintf("%s/iSAX/eps=%g", ds.name, eps), func(b *testing.B) {
				ix := benchISAX(b, ds, series.NormGlobal, harness.DefaultL)
				runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, eps)
			})
			b.Run(fmt.Sprintf("%s/TS-Index/eps=%g", ds.name, eps), func(b *testing.B) {
				ix := benchTS(b, ds, series.NormGlobal, harness.DefaultL)
				runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, eps)
			})
		}
	}
}

// --- Figure 5: query time vs subsequence length ℓ ----------------------

func BenchmarkFig5QueryVsLength(b *testing.B) {
	for _, ds := range benchSetups {
		ext := benchExt(ds, series.NormGlobal)
		for _, l := range harness.LengthGrid {
			l := l
			qs := benchWorkload(ds, ext, l)
			b.Run(fmt.Sprintf("%s/Sweepline/l=%d", ds.name, l), func(b *testing.B) {
				sw := sweepline.New(ext)
				runQueries(b, func(q []float64, e float64) int { return len(sw.Search(q, e)) }, qs, ds.def)
			})
			b.Run(fmt.Sprintf("%s/KV-Index/l=%d", ds.name, l), func(b *testing.B) {
				ix := benchKV(b, ds, series.NormGlobal, l)
				runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, ds.def)
			})
			b.Run(fmt.Sprintf("%s/iSAX/l=%d", ds.name, l), func(b *testing.B) {
				ix := benchISAX(b, ds, series.NormGlobal, l)
				runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, ds.def)
			})
			b.Run(fmt.Sprintf("%s/TS-Index/l=%d", ds.name, l), func(b *testing.B) {
				ix := benchTS(b, ds, series.NormGlobal, l)
				runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, ds.def)
			})
		}
	}
}

// --- Figure 6: per-subsequence normalization (KV-Index inapplicable) ---

func BenchmarkFig6PerSubsequenceNorm(b *testing.B) {
	for _, ds := range benchSetups {
		ext := benchExt(ds, series.NormPerSubsequence)
		qs := benchWorkload(ds, ext, harness.DefaultL)
		for _, eps := range ds.eps {
			eps := eps
			b.Run(fmt.Sprintf("%s/iSAX/eps=%g", ds.name, eps), func(b *testing.B) {
				ix := benchISAX(b, ds, series.NormPerSubsequence, harness.DefaultL)
				runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, eps)
			})
			b.Run(fmt.Sprintf("%s/TS-Index/eps=%g", ds.name, eps), func(b *testing.B) {
				ix := benchTS(b, ds, series.NormPerSubsequence, harness.DefaultL)
				runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, eps)
			})
		}
	}
}

// --- Figure 7: raw (non-normalized) data -------------------------------

func BenchmarkFig7RawData(b *testing.B) {
	for _, ds := range benchSetups {
		ext := benchExt(ds, series.NormNone)
		qs := benchWorkload(ds, ext, harness.DefaultL)
		_, std := series.MeanStd(ds.data)
		eps := ds.def * std // σ-scaled default (see harness.RawEps)
		b.Run(ds.name+"/Sweepline", func(b *testing.B) {
			sw := sweepline.New(ext)
			runQueries(b, func(q []float64, e float64) int { return len(sw.Search(q, e)) }, qs, eps)
		})
		b.Run(ds.name+"/KV-Index", func(b *testing.B) {
			ix := benchKV(b, ds, series.NormNone, harness.DefaultL)
			runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, eps)
		})
		b.Run(ds.name+"/iSAX", func(b *testing.B) {
			ix := benchISAX(b, ds, series.NormNone, harness.DefaultL)
			runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, eps)
		})
		b.Run(ds.name+"/TS-Index", func(b *testing.B) {
			ix := benchTS(b, ds, series.NormNone, harness.DefaultL)
			runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, eps)
		})
	}
}

// --- Figure 8a/8b: index memory footprint and construction time --------

func BenchmarkFig8aMemory(b *testing.B) {
	for _, ds := range benchSetups {
		ext := benchExt(ds, series.NormGlobal)
		b.Run(ds.name, func(b *testing.B) {
			// One representative iteration; the metric of interest is
			// bytes, not time.
			kv, err := kvindex.Build(ext, kvindex.Config{L: harness.DefaultL})
			if err != nil {
				b.Fatal(err)
			}
			isx, err := isax.Build(ext, isax.Config{L: harness.DefaultL, Segments: harness.DefaultM})
			if err != nil {
				b.Fatal(err)
			}
			ts, err := core.Build(ext, core.Config{L: harness.DefaultL})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(kv.MemoryBytes()+kv.AuxiliaryBytes()), "kv-bytes")
			b.ReportMetric(float64(isx.MemoryBytes()), "isax-bytes")
			b.ReportMetric(float64(ts.MemoryBytes()), "tsindex-bytes")
			b.ReportMetric(float64(ts.MemoryBytes())/float64(isx.MemoryBytes()), "ts/isax-ratio")
		})
	}
}

func BenchmarkFig8bBuild(b *testing.B) {
	for _, ds := range benchSetups {
		ext := benchExt(ds, series.NormGlobal)
		b.Run(ds.name+"/KV-Index", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kvindex.Build(ext, kvindex.Config{L: harness.DefaultL}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(ds.name+"/iSAX", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := isax.Build(ext, isax.Config{L: harness.DefaultL, Segments: harness.DefaultM}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(ds.name+"/TS-Index", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(ext, core.Config{L: harness.DefaultL}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Intro experiment (§1): Chebyshev twins vs Euclidean ε√ℓ range -----

func BenchmarkIntroChebyshevVsEuclidean(b *testing.B) {
	ds := benchSetups[1] // EEG
	ext := benchExt(ds, series.NormGlobal)
	qs := benchWorkload(ds, ext, harness.DefaultL)
	sw := sweepline.New(ext)
	b.Run("Chebyshev", func(b *testing.B) {
		runQueries(b, func(q []float64, e float64) int { return len(sw.Search(q, e)) }, qs, ds.def)
	})
	b.Run("Euclidean", func(b *testing.B) {
		edEps := series.EuclideanThresholdFor(ds.def, harness.DefaultL)
		runQueries(b, func(q []float64, e float64) int { return len(sw.SearchEuclidean(q, e)) }, qs, edEps)
	})
}

// --- Ablations of DESIGN.md §5 design choices --------------------------

// Bulk loading vs sequential insertion: construction cost and the query
// speed of the resulting trees.
func BenchmarkAblationBulkVsInsert(b *testing.B) {
	ds := benchSetups[0]
	ext := benchExt(ds, series.NormGlobal)
	qs := benchWorkload(ds, ext, harness.DefaultL)
	b.Run("build/insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(ext, core.Config{L: harness.DefaultL}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("build/bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildBulk(ext, core.Config{L: harness.DefaultL}); err != nil {
				b.Fatal(err)
			}
		}
	})
	ins, err := core.Build(ext, core.Config{L: harness.DefaultL})
	if err != nil {
		b.Fatal(err)
	}
	blk, err := core.BuildBulk(ext, core.Config{L: harness.DefaultL})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("query/insert-built", func(b *testing.B) {
		runQueries(b, func(q []float64, e float64) int { return len(ins.Search(q, e)) }, qs, ds.def)
	})
	b.Run("query/bulk-built", func(b *testing.B) {
		runQueries(b, func(q []float64, e float64) int { return len(blk.Search(q, e)) }, qs, ds.def)
	})
}

// Node capacity (µc, Mc): the paper fixes 10/30; this sweep shows the
// sensitivity of query latency to fan-out.
func BenchmarkAblationNodeCapacity(b *testing.B) {
	ds := benchSetups[0]
	ext := benchExt(ds, series.NormGlobal)
	qs := benchWorkload(ds, ext, harness.DefaultL)
	for _, caps := range []struct{ min, max int }{{5, 15}, {10, 30}, {20, 60}, {40, 120}} {
		caps := caps
		ix, err := core.Build(ext, core.Config{L: harness.DefaultL, MinCap: caps.min, MaxCap: caps.max})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("caps=%d-%d", caps.min, caps.max), func(b *testing.B) {
			runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, ds.def)
		})
	}
}

// KV-Index exact-mean prefilter on/off.
func BenchmarkAblationKVExactMeanFilter(b *testing.B) {
	ds := benchSetups[0]
	ext := benchExt(ds, series.NormGlobal)
	qs := benchWorkload(ds, ext, harness.DefaultL)
	for _, exact := range []bool{false, true} {
		exact := exact
		ix, err := kvindex.Build(ext, kvindex.Config{L: harness.DefaultL, ExactMeanFilter: exact})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("exactMean=%v", exact), func(b *testing.B) {
			runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, ds.def)
		})
	}
}

// iSAX segment count m (paper Table 2 grid).
func BenchmarkAblationISAXSegments(b *testing.B) {
	ds := benchSetups[0]
	ext := benchExt(ds, series.NormGlobal)
	qs := benchWorkload(ds, ext, harness.DefaultL)
	for _, m := range harness.SegmentGrid {
		m := m
		ix, err := isax.Build(ext, isax.Config{L: harness.DefaultL, Segments: m})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, ds.def)
		})
	}
}

// Top-k extension: best-first search cost versus threshold search.
func BenchmarkExtensionTopK(b *testing.B) {
	ds := benchSetups[1]
	ext := benchExt(ds, series.NormGlobal)
	ix := benchTS(b, ds, series.NormGlobal, harness.DefaultL)
	qs := benchWorkload(ds, ext, harness.DefaultL)
	for _, k := range []int{1, 10, 100} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					if got := ix.SearchTopK(q, k); len(got) != k {
						b.Fatalf("got %d results", len(got))
					}
				}
			}
		})
	}
}

// Adaptive (ADS+-style) vs full iSAX build: construction cost and the
// convergence of query latency as refinement proceeds.
func BenchmarkAblationAdaptiveISAX(b *testing.B) {
	ds := benchSetups[1]
	ext := benchExt(ds, series.NormGlobal)
	qs := benchWorkload(ds, ext, harness.DefaultL)
	b.Run("build/full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := isax.Build(ext, isax.Config{L: harness.DefaultL, Segments: harness.DefaultM, LeafCapacity: 128}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("build/adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := isax.BuildAdaptive(ext, isax.Config{L: harness.DefaultL, Segments: harness.DefaultM, LeafCapacity: 128}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query/first-touch", func(b *testing.B) {
		// Each iteration pays the refinement cost on a fresh index.
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ad, err := isax.BuildAdaptive(ext, isax.Config{L: harness.DefaultL, Segments: harness.DefaultM, LeafCapacity: 128})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, q := range qs {
				ad.Search(q, ds.def)
			}
		}
	})
	b.Run("query/warmed", func(b *testing.B) {
		ad, err := isax.BuildAdaptive(ext, isax.Config{L: harness.DefaultL, Segments: harness.DefaultM, LeafCapacity: 128})
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range qs {
			ad.Search(q, ds.def) // warm the touched regions
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				ad.Search(q, ds.def)
			}
		}
	})
}

// Sharded TS-Index construction: the shard count is the parallelism of
// the build (one goroutine per shard), so on a multi-core machine the
// higher-shard sub-benchmarks should beat shards=1 roughly linearly
// until memory bandwidth intervenes; shards=1 is the unchanged
// single-index baseline for reference.
func BenchmarkShardedBuild(b *testing.B) {
	ds := benchSetups[1]
	ext := benchExt(ds, series.NormGlobal)
	for _, p := range []int{1, 2, 4, 0} {
		p := p
		name := fmt.Sprintf("shards=%d", p)
		if p == 0 {
			name = "shards=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shard.Build(ext, shard.Config{
					Config: core.Config{L: harness.DefaultL}, Shards: p,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Sharded TS-Index search: each query fans out across the shards in
// parallel and merges. Per-query work is small, so the win over
// shards=1 shows mainly at loose thresholds (more candidates per
// shard); at tight thresholds the goroutine fan-out overhead is the
// visible cost.
func BenchmarkShardedSearch(b *testing.B) {
	ds := benchSetups[1]
	ext := benchExt(ds, series.NormGlobal)
	qs := benchWorkload(ds, ext, harness.DefaultL)
	for _, p := range []int{1, 2, 4, 0} {
		p := p
		ix, err := shard.Build(ext, shard.Config{
			Config: core.Config{L: harness.DefaultL}, Shards: p,
		})
		if err != nil {
			b.Fatal(err)
		}
		name := fmt.Sprintf("shards=%d", p)
		if p == 0 {
			name = "shards=max"
		}
		for _, eps := range []float64{ds.def, ds.eps[len(ds.eps)-1]} {
			eps := eps
			b.Run(fmt.Sprintf("%s/eps=%g", name, eps), func(b *testing.B) {
				runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, eps)
			})
		}
	}
}

// Skewed shards: 4 partitions with the last holding ~90% of the
// windows. With one goroutine per shard, query latency was bounded by
// the hottest shard — the skewed rows ran at nearly the single-shard
// cost however many cores were free. The work-stealing executor
// enqueues (shard, subtree) units instead, so with workers=max the
// skewed rows should track the balanced rows: latency bounded by total
// work, not by the largest partition. workers=1 rows serialize the
// same units and serve as the no-parallelism baseline.
func BenchmarkSkewedShardSearch(b *testing.B) {
	ds := benchSetups[1]
	ext := benchExt(ds, series.NormGlobal)
	qs := benchWorkload(ds, ext, harness.DefaultL)
	count := series.NumSubsequences(len(ds.data), harness.DefaultL)
	parts := []struct {
		name   string
		bounds []int
	}{
		{"balanced", nil},
		{"skew90", harness.SkewedBoundaries(count, 4, 0.9)},
	}
	eps := ds.eps[len(ds.eps)-1] // loose threshold: per-query work is substantial
	for _, part := range parts {
		for _, workers := range []int{1, 0} {
			ix, err := shard.Build(ext, shard.Config{
				Config: core.Config{L: harness.DefaultL}, Shards: 4,
				Boundaries: part.bounds, Executor: exec.New(workers),
			})
			if err != nil {
				b.Fatal(err)
			}
			wname := fmt.Sprintf("workers=%d", workers)
			if workers == 0 {
				wname = "workers=max"
			}
			b.Run(fmt.Sprintf("%s/%s/range", part.name, wname), func(b *testing.B) {
				runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, eps)
			})
			b.Run(fmt.Sprintf("%s/%s/topk", part.name, wname), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, q := range qs {
						if got := ix.SearchTopK(q, 20); len(got) != 20 {
							b.Fatalf("got %d results", len(got))
						}
					}
				}
			})
		}
	}
}

// Fused batch execution: the whole workload as one executor group over
// (query, shard, subtree) units, versus issuing the queries one by one
// (each still fanning out internally).
func BenchmarkBatchFusion(b *testing.B) {
	ds := benchSetups[1]
	raw := datasets.Queries(ds.data, 7, benchQueries, harness.DefaultL)
	eng, err := twinsearch.Open(ds.data, twinsearch.Options{L: harness.DefaultL, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	eps := ds.def
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range eng.SearchBatch(raw, eps, 0) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range raw {
				if _, err := eng.Search(q, eps); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// Frozen arena vs pointer tree: the same TS-Index under its two memory
// layouts. The frozen rows should show lower ns/op (descent streams two
// flat bound arrays instead of chasing per-node heap objects) and a
// smaller bytes/node footprint (8 structural bytes per node against the
// pointer form's struct + MBTS struct + three slice headers).
func BenchmarkFrozenVsPointer(b *testing.B) {
	for _, ds := range benchSetups {
		ext := benchExt(ds, series.NormGlobal)
		qs := benchWorkload(ds, ext, harness.DefaultL)
		ix := benchTS(b, ds, series.NormGlobal, harness.DefaultL)
		fz := ix.Freeze()
		nodes := float64(ix.NodeCount())
		b.Run(ds.name+"/freeze", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.Freeze()
			}
		})
		for _, eps := range []float64{ds.def, ds.eps[len(ds.eps)-1]} {
			eps := eps
			b.Run(fmt.Sprintf("%s/pointer/search/eps=%g", ds.name, eps), func(b *testing.B) {
				// After runQueries: its ResetTimer wipes user metrics.
				runQueries(b, func(q []float64, e float64) int { return len(ix.Search(q, e)) }, qs, eps)
				b.ReportMetric(float64(ix.MemoryBytes())/nodes, "bytes/node")
			})
			b.Run(fmt.Sprintf("%s/frozen/search/eps=%g", ds.name, eps), func(b *testing.B) {
				runQueries(b, func(q []float64, e float64) int { return len(fz.Search(q, e)) }, qs, eps)
				b.ReportMetric(float64(fz.MemoryBytes())/nodes, "bytes/node")
			})
		}
		b.Run(ds.name+"/pointer/topk", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					ix.SearchTopK(q, 20)
				}
			}
		})
		b.Run(ds.name+"/frozen/topk", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					fz.SearchTopK(q, 20)
				}
			}
		})
	}
}

// Mean-sorted vs contiguous shard partitioning: mean-sorted shards pack
// look-alike windows, so their MBTS are tighter and range searches
// verify fewer candidates; the cost is a k-way merge (and a sort during
// build). Result sets are identical.
func BenchmarkMeanShardPartition(b *testing.B) {
	ds := benchSetups[1]
	ext := benchExt(ds, series.NormGlobal)
	qs := benchWorkload(ds, ext, harness.DefaultL)
	for _, byMean := range []bool{false, true} {
		name := "range"
		if byMean {
			name = "mean"
		}
		ix, err := shard.Build(ext, shard.Config{
			Config: core.Config{L: harness.DefaultL}, Shards: 4, PartitionByMean: byMean,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, eps := range []float64{ds.def, ds.eps[len(ds.eps)-1]} {
			eps := eps
			b.Run(fmt.Sprintf("%s/eps=%g", name, eps), func(b *testing.B) {
				var cands int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, q := range qs {
						_, st := ix.SearchStats(q, eps)
						cands += st.Candidates
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(cands)/float64(b.N)/float64(len(qs)), "candidates/query")
			})
		}
	}
}

// Parallel vs serial iSAX construction (the ParIS/MESSI direction).
func BenchmarkAblationParallelISAXBuild(b *testing.B) {
	ds := benchSetups[1]
	ext := benchExt(ds, series.NormGlobal)
	cfg := isax.Config{L: harness.DefaultL, Segments: harness.DefaultM, LeafCapacity: 256}
	b.Run("workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := isax.BuildParallel(ext, cfg, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := isax.BuildParallel(ext, cfg, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers=max", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := isax.BuildParallel(ext, cfg, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Index persistence: serialize/reload a built TS-Index versus
// rebuilding it from the series.
func BenchmarkExtensionPersistence(b *testing.B) {
	ds := benchSetups[0]
	ext := benchExt(ds, series.NormGlobal)
	ix := benchTS(b, ds, series.NormGlobal, harness.DefaultL)
	var blob bytes.Buffer
	if _, err := ix.WriteTo(&blob); err != nil {
		b.Fatal(err)
	}
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if _, err := ix.WriteTo(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Load(bytes.NewReader(blob.Bytes()), ext); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(ext, core.Config{L: harness.DefaultL}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(blob.Len()), "blob-bytes")
}

// Guard: the benches above assume the generators stay selective; this
// canary fails loudly if someone retunes a generator into a regime where
// the figures stop being meaningful (half the series matching).
func TestBenchSelectivityCanary(t *testing.T) {
	for _, ds := range benchSetups {
		ext := benchExt(ds, series.NormGlobal)
		sw := sweepline.New(ext)
		qs := benchWorkload(ds, ext, harness.DefaultL)
		total := 0
		for _, q := range qs {
			total += len(sw.Search(q, ds.def))
		}
		avg := float64(total) / float64(len(qs))
		windows := float64(series.NumSubsequences(len(ds.data), harness.DefaultL))
		if frac := avg / windows; frac > 0.10 {
			t.Fatalf("%s: default-eps selectivity %.1f%% exceeds 10%% — generator no longer index-friendly",
				ds.name, 100*frac)
		}
		if avg < 1 {
			t.Fatalf("%s: workload queries should at least match themselves", ds.name)
		}
		if math.IsNaN(avg) {
			t.Fatal("unexpected NaN")
		}
	}
}
