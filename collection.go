package twinsearch

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// CollectionMatch is a twin found in a multi-series collection: which
// series it came from and the 0-based start within that series.
type CollectionMatch struct {
	Series int
	Start  int
	Dist   float64 // -1 unless the search computes exact distances
}

// Collection answers twin queries across a set of independent time
// series (a sensor fleet, one series per patient, …) with one engine
// per member — the paper studies a single input series; this wrapper
// lifts every search mode to collections and merges results
// deterministically (by series, then start).
type Collection struct {
	engines []*Engine
	opt     Options

	// closed mirrors Engine.closed at the collection level: searches
	// beginning after Close fail with ErrClosed up front instead of
	// relying on whichever member engine they reach first.
	closed atomic.Bool
}

// OpenCollection builds an engine per series with shared options. Every
// series must be at least L long; normalization is applied per series
// (each member has its own scale, which is what fleet data looks like).
func OpenCollection(seriesSet [][]float64, opt Options) (*Collection, error) {
	if len(seriesSet) == 0 {
		return nil, fmt.Errorf("twinsearch: empty collection")
	}
	c := &Collection{opt: opt}
	for i, data := range seriesSet {
		eng, err := Open(data, opt)
		if err != nil {
			return nil, fmt.Errorf("twinsearch: collection member %d: %w", i, err)
		}
		c.engines = append(c.engines, eng)
	}
	return c, nil
}

// Len returns the number of member series.
func (c *Collection) Len() int { return len(c.engines) }

// Close releases every member engine's resources (mapped arenas,
// attached stores — see Engine.Close), returning the first error.
func (c *Collection) Close() error {
	c.closed.Store(true)
	var firstErr error
	for _, eng := range c.engines {
		if err := eng.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Engine returns the engine for member i.
func (c *Collection) Engine(i int) *Engine { return c.engines[i] }

// Search returns all twins of q at threshold eps across every member,
// ordered by (series, start). The query is interpreted in each member's
// raw value space and normalized per member.
func (c *Collection) Search(q []float64, eps float64) ([]CollectionMatch, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	var out []CollectionMatch
	for i, eng := range c.engines {
		ms, err := eng.Search(q, eps)
		if err != nil {
			return nil, fmt.Errorf("twinsearch: collection member %d: %w", i, err)
		}
		for _, m := range ms {
			out = append(out, CollectionMatch{Series: i, Start: m.Start, Dist: m.Dist})
		}
	}
	return out, nil
}

// SearchTopK returns the k nearest windows across the whole collection
// (TS-Index members only), in ascending (distance, series, start) order.
func (c *Collection) SearchTopK(q []float64, k int) ([]CollectionMatch, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if k <= 0 {
		return nil, nil
	}
	var all []CollectionMatch
	for i, eng := range c.engines {
		ms, err := eng.SearchTopK(q, k)
		if err != nil {
			return nil, fmt.Errorf("twinsearch: collection member %d: %w", i, err)
		}
		for _, m := range ms {
			all = append(all, CollectionMatch{Series: i, Start: m.Start, Dist: m.Dist})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		if all[a].Series != all[b].Series {
			return all[a].Series < all[b].Series
		}
		return all[a].Start < all[b].Start
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// SearchBatch fans a query workload across members and queries
// concurrently (parallelism per Engine.SearchBatch semantics applied at
// the collection level: one goroutine pool over (member, query) pairs
// is unnecessary — members are already independent, so batching per
// member suffices).
func (c *Collection) SearchBatch(queries [][]float64, eps float64, parallelism int) ([][]CollectionMatch, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	out := make([][]CollectionMatch, len(queries))
	for i, eng := range c.engines {
		results := eng.SearchBatch(queries, eps, parallelism)
		for qi, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("twinsearch: collection member %d query %d: %w", i, qi, r.Err)
			}
			for _, m := range r.Matches {
				out[qi] = append(out[qi], CollectionMatch{Series: i, Start: m.Start, Dist: m.Dist})
			}
		}
	}
	return out, nil
}
