// Package twinsearch is a Go implementation of twin subsequence search
// in time series — finding every subsequence of a long series whose
// Chebyshev (L∞) distance to a query sequence is at most ε — after
// "Twin Subsequence Search in Time Series" (EDBT 2021).
//
// The package exposes four interchangeable search methods behind one
// Engine type:
//
//   - MethodTSIndex (default): the paper's contribution, a
//     height-balanced tree whose nodes carry Minimum Bounding Time
//     Series. Fastest under every condition the paper evaluates.
//   - MethodISAX: the iSAX tree adapted to twin search via per-segment
//     mean bounds.
//   - MethodKVIndex: an inverted index over subsequence means
//     (inapplicable under per-subsequence normalization).
//   - MethodSweepline: the exact index-free scan, useful as ground
//     truth and for one-off queries that don't amortize an index build.
//
// Basic use:
//
//	eng, err := twinsearch.Open(data, twinsearch.Options{L: 100})
//	if err != nil { ... }
//	matches, err := eng.Search(query, 0.3)
//
// Queries are given in the raw value space of the input series; the
// engine applies the configured normalization to data and query
// consistently.
package twinsearch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"twinsearch/internal/arena"
	"twinsearch/internal/cluster"
	"twinsearch/internal/core"
	"twinsearch/internal/exec"
	"twinsearch/internal/isax"
	"twinsearch/internal/kvindex"
	"twinsearch/internal/obs"
	"twinsearch/internal/qcache"
	"twinsearch/internal/series"
	"twinsearch/internal/shard"
	"twinsearch/internal/store"
	"twinsearch/internal/sweepline"
)

// NormMode selects how values are normalized before indexing and search;
// see the paper §3.1 and the constants below.
type NormMode = series.NormMode

// Normalization modes.
const (
	// NormNone indexes raw values.
	NormNone = series.NormNone
	// NormGlobal z-normalizes the whole series once (paper default).
	NormGlobal = series.NormGlobal
	// NormPerSubsequence z-normalizes every window independently.
	NormPerSubsequence = series.NormPerSubsequence
)

// Match is a search hit: the 0-based start of the twin subsequence and,
// when the method computes it (SearchTopK), its Chebyshev distance
// (otherwise -1).
type Match = series.Match

// Method selects the search implementation.
type Method int

// Search methods.
const (
	MethodTSIndex Method = iota
	MethodISAX
	MethodKVIndex
	MethodSweepline
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodTSIndex:
		return "TS-Index"
	case MethodISAX:
		return "iSAX"
	case MethodKVIndex:
		return "KV-Index"
	case MethodSweepline:
		return "Sweepline"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ErrTopKUnsupported is returned by SearchTopK for methods other than
// TS-Index.
var ErrTopKUnsupported = errors.New("twinsearch: top-k search requires MethodTSIndex")

// Options configures an Engine. The zero value of every field selects a
// sensible default; only L is mandatory.
type Options struct {
	// L is the subsequence length the engine indexes and queries
	// (paper default 100). Required.
	L int
	// Method selects the search implementation (default MethodTSIndex).
	Method Method
	// Norm selects the normalization mode (default NormGlobal, the
	// paper's default setting).
	Norm NormMode
	// NormSet forces Norm to be honored even when it is the zero value;
	// set it when you explicitly want NormNone. (NormNone is the
	// NormMode zero value, so Options{Norm: NormNone} alone is
	// indistinguishable from "use the default".)
	NormSet bool

	// TS-Index knobs (MethodTSIndex).
	MinCap, MaxCap int  // node capacities µc, Mc (defaults 10, 30)
	BulkLoad       bool // bottom-up construction instead of insertion

	// Shards splits the TS-Index into that many window partitions, built
	// concurrently and searched by parallel fan-out with a deterministic
	// merge — answers are identical to the single index; construction
	// and search scale with cores. 0 (or 1) keeps the unchanged
	// single-index path; a negative value selects one shard per
	// available CPU (GOMAXPROCS). MethodTSIndex only.
	Shards int

	// PartitionByMean makes sharded partitions own mean-sorted runs of
	// the window positions instead of contiguous ranges: each shard
	// packs look-alike windows, so its MBTS are tighter and searches
	// prune more, at the cost of a k-way merge (by start position)
	// where contiguous shards simply concatenate. Answers are
	// identical either way. Ignored unless Shards resolves above 1.
	PartitionByMean bool

	// Workers sizes the engine's query executor — the work-stealing
	// worker pool that runs every parallel search path: sharded
	// fan-out (each query becomes fine-grained (shard, subtree) work
	// units, so one hot shard no longer bounds latency), SearchBatch
	// workloads (all queries share the one pool instead of nesting a
	// second one), and approximate probes. 0 selects GOMAXPROCS.
	// Answers never depend on the worker count.
	Workers int

	// MMap makes OpenSavedFile memory-map the saved index instead of
	// reading it: the engine's frozen arenas become views into the
	// mapped file, so opening a multi-gigabyte index costs O(header)
	// allocations, pages fault in on demand, and N processes serving
	// the same index share one physical copy. Requires the current
	// aligned formats (TSFZ v2 / TSSH v3) and a little-endian host;
	// anything else silently falls back to the copy loader, which
	// yields byte-identical answers. Call Engine.Close to release the
	// mapping. Ignored by every entry point except OpenSavedFile.
	MMap bool

	// Prefetch warms a memory-mapped index right after OpenSavedFile
	// maps it: madvise(MADV_WILLNEED) over the region plus a bounded
	// sequential touch pass (see arena.Prefetch). It trades the
	// page-fault latency tail of the first queries for a fixed warmup
	// cost at open. Ignored without MMap (heap engines are already
	// resident).
	Prefetch bool

	// Topology points Open at a cluster topology file instead of a
	// local index: the engine becomes a distributed-query coordinator
	// that fans every search across the shard nodes listed there
	// (internal/cluster) and merges deterministically — answers are
	// byte-identical to a local engine over the same saved index. The
	// engine still needs the full series (data) for query
	// normalization, verification-free merging, and the prefix tail
	// scan. Cluster engines are read-only: Append and SaveIndex return
	// errors. Requires MethodTSIndex; Shards/BulkLoad are ignored
	// (the saved index fixed them). MMap/Prefetch/Workers apply to
	// topology entries served in-process (addr "local").
	Topology string

	// ClusterTimeout bounds every per-node RPC of a Topology engine; an
	// attempt that cannot answer within it fails over to the shard's
	// next replica, and only when every replica is out does the query
	// fail with an error naming the nodes. 0 selects the cluster
	// default (10s). The bound is per attempt and absolute: it also
	// caps any longer deadline on the caller's context.
	ClusterTimeout time.Duration

	// ClusterHedge, when positive, hedges each cluster query unit: the
	// same unit goes to a second replica after this delay, the first
	// response wins, the loser is canceled. Needs a replicated topology
	// (Replicas ≥ 2) to have any effect. 0 disables hedging.
	ClusterHedge time.Duration

	// ClusterBreakerFails is the consecutive-failure run that trips a
	// node's circuit breaker, dropping it to the back of the replica
	// attempt order until a health probe sees it answer again. 0
	// selects the cluster default (3).
	ClusterBreakerFails int

	// ClusterRefresh is the period of the coordinator's background
	// membership sweep, the single source of truth for node liveness
	// surfaced in /healthz. 0 selects the cluster default (2s);
	// negative disables the sweep.
	ClusterRefresh time.Duration

	// PlanCache sizes the prepared-query plan cache: an LRU keyed by
	// the raw query bytes that stores the validated query mapped into
	// the engine's value space, so a repeated query skips validation
	// and normalization and goes straight to index dispatch. 0
	// disables the cache (the default — library callers pay nothing
	// unless they opt in); a negative value selects
	// DefaultPlanCacheEntries; a positive value is the entry bound.
	// Serving tiers (tsserve) enable it by default.
	PlanCache int

	// ResultCacheBytes sizes the result cache: whole answers keyed by
	// (query bytes, parameters, search path, index epoch), bounded to
	// this many bytes with LRU eviction. A hit returns the cached
	// matches — byte-identical to a fresh traversal — without touching
	// the index. Invalidation is structural: every Append bumps the
	// engine's epoch (see Epoch), so stale entries become unreachable
	// by key mismatch and age out under the byte budget; nothing is
	// scanned. 0 disables (default), negative selects
	// DefaultResultCacheBytes, positive is the byte bound. Only the
	// raw-query entry points consult it (Search/SearchStats/SearchTopK/
	// SearchShorter/SearchApprox and their Ctx forms); SearchPrepared
	// and the batch paths always traverse.
	ResultCacheBytes int

	// TraceSample enables 1-in-N per-query trace sampling: every Nth
	// raw query (across all paths) records a span tree — validation,
	// cache outcomes, per-shard traversal counters, cluster attempts —
	// retained in the slow-query log when the query crosses its
	// threshold. 0 disables sampling (the default); tracing can still
	// be forced per query by installing a span in the context (the
	// server does this for ?trace=1). The untraced path is
	// allocation-free regardless of this knob.
	TraceSample int

	// SlowLogSize enables the slow-query log: a ring buffer of the N
	// most recent queries whose latency reached SlowLogThreshold,
	// surfaced at the server's GET /debug/slowlog and via
	// Engine.SlowLog. 0 disables it (the default).
	SlowLogSize int

	// SlowLogThreshold is the latency at or above which a query enters
	// the slow-query log. 0 selects 100ms. Ignored without SlowLogSize.
	SlowLogThreshold time.Duration

	// iSAX knobs (MethodISAX).
	Segments     int // PAA segments m (default 10)
	LeafCapacity int // leaf capacity (default 10,000)

	// KV-Index knobs (MethodKVIndex).
	KeyCount        int  // mean buckets (default 256)
	ExactMeanFilter bool // O(1) exact-mean prefilter before verification
}

func (o *Options) fill() error {
	if o.L <= 0 {
		return fmt.Errorf("twinsearch: Options.L = %d; a positive subsequence length is required", o.L)
	}
	if !o.NormSet && o.Norm == NormNone {
		o.Norm = NormGlobal
	}
	if o.Segments == 0 {
		o.Segments = 10
	}
	return nil
}

// Engine holds a built index (or scan state) over one time series and
// answers twin queries against it.
type Engine struct {
	opt Options
	ext *series.Extractor
	ex  *exec.Executor // query executor; sized by Options.Workers

	sweep *sweepline.Sweepline
	kv    *kvindex.Index
	isx   *isax.Index
	// MethodTSIndex, Options.Shards resolving ≤ 1: fz is the frozen
	// arena every search traverses; ts is the mutable pointer tree,
	// resident only while Append needs it (it is dropped after the
	// initial build and thawed back from fz on the first Append).
	// Append marks fzDirty instead of re-freezing eagerly — appending
	// value by value stays cheap — and the next search recompiles the
	// arena once (fzMu serializes searches racing to do so, mirroring
	// shard.Index.ensureFrozen).
	fz      *core.Frozen
	ts      *core.Index
	fzDirty atomic.Bool
	fzMu    sync.Mutex
	sh      *shard.Index // MethodTSIndex, Options.Shards resolving > 1

	// cl serves queries when the engine was opened with
	// Options.Topology: a distributed coordinator fanning out to shard
	// nodes instead of any local index.
	cl *cluster.Coordinator

	// ar is the mapped file region backing the index when the engine
	// was opened with Options.MMap; the engine owns it and Close
	// releases it. nil for every heap-resident engine.
	ar *arena.Arena

	// Serving-tier caches (nil when disabled): plan holds prepared
	// queries keyed by raw query bytes, res holds whole answers keyed
	// by (query, params, path, epoch). See Options.PlanCache /
	// Options.ResultCacheBytes.
	plan *qcache.PlanCache
	res  *qcache.ResultCache

	// epoch is the index mutation counter result-cache keys embed:
	// bumped on every Append (and on Close), never on re-freeze (the
	// logical content is unchanged). Cluster engines compose their
	// epoch from per-node values instead — see Epoch.
	epoch atomic.Uint64

	// Observability (internal/obs): met is the always-on metric set
	// behind Engine.Metrics and GET /metrics; sampler decides which
	// queries grow a span tree (Options.TraceSample); slow retains
	// above-threshold queries (nil unless Options.SlowLogSize). See
	// obs_engine.go.
	met     *engineMetrics
	sampler *obs.Sampler
	slow    *obs.SlowLog

	// closed guards use-after-Close: every search/mutation entry point
	// fails with ErrClosed instead of reaching arenas that may point
	// into an unmapped region. closeMu makes concurrent Close calls
	// idempotent.
	closed  atomic.Bool
	closeMu sync.Mutex
}

// Serving-tier cache defaults, selected by negative Options.PlanCache /
// Options.ResultCacheBytes (and by tsserve's flag defaults).
const (
	DefaultPlanCacheEntries = 4096
	DefaultResultCacheBytes = 32 << 20
)

// newEngine builds the common engine shell every open path shares:
// extractor, executor, and the serving-tier caches the options select.
func newEngine(data []float64, opt Options) *Engine {
	e := &Engine{opt: opt, ext: series.NewExtractor(data, opt.Norm), ex: exec.New(opt.Workers)}
	if n := opt.PlanCache; n != 0 {
		if n < 0 {
			n = DefaultPlanCacheEntries
		}
		e.plan = qcache.NewPlan(n)
	}
	if b := opt.ResultCacheBytes; b != 0 {
		if b < 0 {
			b = DefaultResultCacheBytes
		}
		e.res = qcache.NewResult(b)
	}
	e.met = newEngineMetrics()
	e.sampler = obs.NewSampler(opt.TraceSample)
	e.slow = obs.NewSlowLog(opt.SlowLogSize, opt.SlowLogThreshold)
	e.registerEngineGauges()
	return e
}

// ErrClosed is returned by every search, append, and save entry point
// once Engine.Close has run: a closed engine's arenas may point into an
// unmapped file region, so the guard turns a potential fault into a
// clean error.
var ErrClosed = errors.New("twinsearch: engine is closed")

// Close releases the resources an engine may hold beyond the heap: the
// mapped index region (Options.MMap), the cluster coordinator's local
// mappings and idle connections (Options.Topology), and the series
// store attached to the extractor, if it is closeable (e.g. a
// store.Disk serving disk-resident verification). Heap-only engines
// close trivially. Close is idempotent, safe to race with itself, and
// every call after the first returns nil; searches, appends, and saves
// beginning after Close fail with ErrClosed. A search still in flight
// when Close lands is not protected — quiesce first (tsserve drains
// before closing).
func (e *Engine) Close() error {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.closed.Load() {
		return nil
	}
	e.closed.Store(true)
	// Close is a cache-relevant mutation too: bump the epoch so any
	// result-cache write racing the close can never be read back (its
	// key embeds the pre-close epoch).
	e.epoch.Add(1)
	var firstErr error
	if e.cl != nil {
		firstErr = e.cl.Close()
	}
	if e.ar != nil {
		if err := e.ar.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		e.ar = nil
	}
	if c, ok := e.ext.Backing().(io.Closer); ok {
		e.ext.DetachStore()
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// tsFrozen returns the single-index arena, re-freezing it first if
// Append left it stale. Hot path cost is one atomic load.
func (e *Engine) tsFrozen() *core.Frozen {
	if e.fzDirty.Load() {
		e.fzMu.Lock()
		if e.fzDirty.Load() {
			e.fz = e.ts.Freeze()
			e.fzDirty.Store(false)
		}
		e.fzMu.Unlock()
	}
	return e.fz
}

// resolveShards maps the Options.Shards knob to an effective shard
// count: non-positive-is-auto is resolved here so the engine's routing
// (ts vs sh) is fixed at Open time.
func resolveShards(shards int) int {
	if shards < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return shards
}

// Open builds an engine over data according to opt. The slice is not
// copied for raw/per-subsequence modes and must not be modified
// afterwards. Every value must be finite: a NaN would poison the
// early-abandoning comparisons (NaN > ε is false, so a NaN window would
// silently match everything), so non-finite input is rejected here.
func Open(data []float64, opt Options) (*Engine, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	if len(data) < opt.L {
		return nil, fmt.Errorf("twinsearch: series length %d shorter than L=%d", len(data), opt.L)
	}
	for i, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("twinsearch: non-finite value %v at position %d; clean or impute missing samples first", v, i)
		}
	}
	if resolveShards(opt.Shards) > 1 && opt.Method != MethodTSIndex {
		return nil, fmt.Errorf("twinsearch: Options.Shards requires MethodTSIndex, got %v", opt.Method)
	}
	e := newEngine(data, opt)
	if opt.Topology != "" {
		if opt.Method != MethodTSIndex {
			return nil, fmt.Errorf("twinsearch: Options.Topology requires MethodTSIndex, got %v", opt.Method)
		}
		topo, err := cluster.LoadTopology(opt.Topology)
		if err != nil {
			return nil, err
		}
		cl, err := cluster.OpenCoordinator(context.Background(), topo, e.ext, opt.L, cluster.Options{
			Timeout: opt.ClusterTimeout, HedgeDelay: opt.ClusterHedge,
			BreakerFails: opt.ClusterBreakerFails, RefreshInterval: opt.ClusterRefresh,
			Workers: opt.Workers, NoMMap: !opt.MMap, Prefetch: opt.Prefetch,
		})
		if err != nil {
			return nil, err
		}
		e.cl = cl
		e.registerClusterGauges()
		return e, nil
	}
	var err error
	switch opt.Method {
	case MethodSweepline:
		e.sweep = sweepline.New(e.ext)
	case MethodKVIndex:
		e.kv, err = kvindex.Build(e.ext, kvindex.Config{
			L: opt.L, KeyCount: opt.KeyCount, ExactMeanFilter: opt.ExactMeanFilter,
		})
	case MethodISAX:
		e.isx, err = isax.Build(e.ext, isax.Config{
			L: opt.L, Segments: opt.Segments, LeafCapacity: opt.LeafCapacity,
		})
	case MethodTSIndex:
		cfg := core.Config{L: opt.L, MinCap: opt.MinCap, MaxCap: opt.MaxCap}
		if shards := resolveShards(opt.Shards); shards > 1 {
			e.sh, err = shard.Build(e.ext, shard.Config{
				Config: cfg, Shards: shards, BulkLoad: opt.BulkLoad,
				PartitionByMean: opt.PartitionByMean, Executor: e.ex,
			})
		} else {
			var ix *core.Index
			if opt.BulkLoad {
				ix, err = core.BuildBulk(e.ext, cfg)
			} else {
				ix, err = core.Build(e.ext, cfg)
			}
			if err == nil {
				// Freeze the built tree into its flat arena and let the
				// pointer form go; Append thaws it back on demand.
				e.fz = ix.Freeze()
			}
		}
	default:
		err = fmt.Errorf("twinsearch: unknown method %v", opt.Method)
	}
	if err != nil {
		return nil, err
	}
	return e, nil
}

// OpenFile builds an engine over a series stored in the flat binary
// float64 format written by store.WriteFile / cmd/tsgen.
func OpenFile(path string, opt Options) (*Engine, error) {
	data, err := store.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Open(data, opt)
}

// Search returns all subsequences whose Chebyshev distance to q is at
// most eps, ordered by start position. q is in the raw value space of
// the input series and must have length L with finite values.
func (e *Engine) Search(q []float64, eps float64) ([]Match, error) {
	return e.SearchCtx(context.Background(), q, eps)
}

// SearchCtx is Search honoring cancellation: when ctx ends, queued
// fan-out work units are skipped, in-flight remote calls abort, and the
// call returns ctx.Err() — the hook internal/server uses to stop
// burning executor time for disconnected clients.
func (e *Engine) SearchCtx(ctx context.Context, q []float64, eps float64) ([]Match, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	ctx, qo := e.beginQuery(ctx, qpSearch)
	tq, err := e.validateQueryCtx(ctx, q, eps)
	if err != nil {
		e.endQuery(qo, err)
		return nil, err
	}
	r, err := e.searchCached(ctx, qcache.PathSearch, q, eps, 0, func() (qcache.Result, error) {
		ms, err := e.searchPreparedCtx(ctx, tq, eps)
		return qcache.Result{Matches: ms}, err
	})
	e.endQuery(qo, err)
	return r.Matches, err
}

// Stats carries the traversal counters of one TS-Index search: nodes
// visited and pruned, leaves reached, candidate windows verified, and
// results found — the observability surface SearchStats reports.
type Stats = core.Stats

// SearchStats is Search plus the traversal counters of the answer. On
// sharded and cluster engines the counters are summed across work
// units (each partition's tree packs differently, so the values differ
// from a single index's; the match set does not). Requires
// MethodTSIndex.
func (e *Engine) SearchStats(q []float64, eps float64) ([]Match, Stats, error) {
	return e.SearchStatsCtx(context.Background(), q, eps)
}

// SearchStatsCtx is SearchStats honoring cancellation (see SearchCtx).
func (e *Engine) SearchStatsCtx(ctx context.Context, q []float64, eps float64) ([]Match, Stats, error) {
	if e.closed.Load() {
		return nil, Stats{}, ErrClosed
	}
	if e.opt.Method != MethodTSIndex {
		return nil, Stats{}, errors.New("twinsearch: SearchStats requires MethodTSIndex")
	}
	ctx, qo := e.beginQuery(ctx, qpStats)
	tq, err := e.validateQueryCtx(ctx, q, eps)
	if err != nil {
		e.endQuery(qo, err)
		return nil, Stats{}, err
	}
	r, err := e.searchCached(ctx, qcache.PathStats, q, eps, 0, func() (qcache.Result, error) {
		ms, st, err := e.searchStatsPreparedCtx(ctx, tq, eps)
		return qcache.Result{Matches: ms, Stats: st, HasStats: true}, err
	})
	e.endQuery(qo, err)
	return r.Matches, r.Stats, err
}

// searchStatsPreparedCtx dispatches a validated, transformed query to
// the stats-reporting traversal of whichever TS-Index backing the
// engine has.
func (e *Engine) searchStatsPreparedCtx(ctx context.Context, tq []float64, eps float64) ([]Match, Stats, error) {
	if e.cl != nil {
		return e.cl.SearchStats(ctx, tq, eps)
	}
	if e.sh != nil {
		return e.sh.SearchStatsCtx(ctx, tq, eps)
	}
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	_, tsp := obs.StartSpan(ctx, "traverse")
	ms, st := e.tsFrozen().SearchStats(tq, eps)
	setStatsAttrs(tsp, st)
	tsp.End()
	return ms, st, nil
}

// validateQuery runs the full raw-query validation and returns the
// query mapped into the engine's value space. SearchBatch hoists this
// per query so the transformed query is shared by every (query, shard)
// work unit instead of being recomputed inside each worker.
func (e *Engine) validateQuery(q []float64, eps float64) ([]float64, error) {
	tq, _, err := e.validateQueryHit(q, eps)
	return tq, err
}

// validateQueryHit is validateQuery also reporting whether the plan
// came from the plan cache — the bit the trace layer annotates.
func (e *Engine) validateQueryHit(q []float64, eps float64) ([]float64, bool, error) {
	if eps < 0 || math.IsNaN(eps) {
		return nil, false, fmt.Errorf("twinsearch: invalid threshold %v", eps)
	}
	return e.planQuery(q)
}

// planQuery validates a raw query (length, finiteness) and maps it
// into the engine's value space, consulting the plan cache when one is
// configured: a hit skips both the validation pass and the transform
// (cached plans were stored post-validation, and the transform is a
// pure function of the query bytes — the global normalization
// parameters are frozen at Open, so a plan never goes stale). The
// returned slice is shared on a hit and must be treated as read-only;
// every search path already does.
func (e *Engine) planQuery(q []float64) ([]float64, bool, error) {
	if len(q) != e.opt.L {
		return nil, false, fmt.Errorf("twinsearch: query length %d, engine built for L=%d", len(q), e.opt.L)
	}
	var key string
	if e.plan != nil {
		key = qcache.QueryKey(q)
		if tq, ok := e.plan.Get(key); ok {
			return tq, true, nil
		}
	}
	for i, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, false, fmt.Errorf("twinsearch: non-finite query value %v at position %d", v, i)
		}
	}
	// With no normalization the transform is the identity, so when no
	// plan cache will retain tq past this call, serve q itself instead
	// of a defensive copy: the traversal treats tq as read-only and is
	// done with it before the caller regains control, and skipping the
	// copy keeps the uncached raw-mode query path allocation-free
	// (BenchmarkTraceDisabled).
	if e.plan == nil && e.ext.Mode() == series.NormNone {
		return q, false, nil
	}
	tq := e.ext.TransformQuery(q)
	if e.plan != nil {
		e.plan.Put(key, tq)
	}
	return tq, false, nil
}

// searchCached serves one raw-query search from the result cache when
// enabled: the key embeds the search path, both parameters, the raw
// query bytes, and the index epoch read *before* the traversal starts,
// so an answer computed against one index version can never be served
// for another — invalidation is a key mismatch, never a scan. Errors
// (including cancellations) are never cached.
func (e *Engine) searchCached(ctx context.Context, path qcache.Path, q []float64, a, b float64, run func() (qcache.Result, error)) (qcache.Result, error) {
	sp := obs.SpanFrom(ctx)
	if e.res == nil {
		sp.Set("result_cache", "off")
		return run()
	}
	epoch := e.Epoch()
	key := qcache.ResultKey(path, epoch, a, b, q)
	if r, ok := e.res.Get(key); ok {
		sp.Set("result_cache", "hit")
		return r, nil
	}
	sp.Set("result_cache", "miss")
	r, err := run()
	if err != nil {
		return r, err
	}
	e.res.Put(key, r)
	return r, nil
}

// Epoch returns the engine's index mutation counter: a monotonically
// increasing value bumped by every Append (and by Close), stable
// across searches and re-freezes. Result-cache keys embed it, so any
// consumer caching answers can use "epoch changed" as the invalidation
// signal. Cluster engines compose the epoch from the coordinator's
// per-node view.
func (e *Engine) Epoch() uint64 {
	if e.cl != nil {
		return e.cl.Epoch()
	}
	return e.epoch.Load()
}

// CacheCounters is one serving-tier cache's observability snapshot.
type CacheCounters struct {
	Enabled   bool   `json:"enabled"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int    `json:"bytes,omitempty"` // result cache only
}

// ServingStats is the engine's serving-tier observability snapshot:
// the index epoch plus both caches' counters — the payload behind the
// server's /stats endpoint.
type ServingStats struct {
	Epoch  uint64        `json:"epoch"`
	Plan   CacheCounters `json:"plan_cache"`
	Result CacheCounters `json:"result_cache"`
}

// ServingStats snapshots the serving-tier caches and epoch. Cheap:
// counter loads plus one short mutex hold per cache stripe.
func (e *Engine) ServingStats() ServingStats {
	out := ServingStats{Epoch: e.Epoch()}
	if e.plan != nil {
		s := e.plan.Stats()
		out.Plan = CacheCounters{Enabled: true, Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, Entries: s.Entries}
	}
	if e.res != nil {
		s := e.res.Stats()
		out.Result = CacheCounters{Enabled: true, Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, Entries: s.Entries, Bytes: s.Bytes}
	}
	return out
}

// SearchPrepared is Search for queries already expressed in the engine's
// normalized value space (e.g. returned by PrepareQuery, or sampled from
// the normalized series). Most callers want Search.
func (e *Engine) SearchPrepared(q []float64, eps float64) ([]Match, error) {
	return e.SearchPreparedCtx(context.Background(), q, eps)
}

// SearchPreparedCtx is SearchPrepared honoring cancellation (see
// SearchCtx) — the serving tier routes admitted prepared-space queries
// through it so queued work dies with the request. Prepared-space
// queries bypass the result cache: its keys are raw query bytes, and a
// prepared query with the same bits as a raw one must not alias its
// answer.
func (e *Engine) SearchPreparedCtx(ctx context.Context, q []float64, eps float64) ([]Match, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if len(q) != e.opt.L {
		return nil, fmt.Errorf("twinsearch: query length %d, engine built for L=%d", len(q), e.opt.L)
	}
	// Same threshold validation as Search: a NaN would pass every
	// eps < 0 guard and silently poison the early-abandoning
	// comparisons (NaN > eps is false, so every window would match).
	if eps < 0 || math.IsNaN(eps) {
		return nil, fmt.Errorf("twinsearch: invalid threshold %v", eps)
	}
	return e.searchPreparedCtx(ctx, q, eps)
}

// searchPreparedCtx dispatches a validated, transformed query. Only the
// fanned-out paths (sharded and cluster engines) observe ctx mid-query;
// the single-structure methods check it once up front.
func (e *Engine) searchPreparedCtx(ctx context.Context, q []float64, eps float64) ([]Match, error) {
	if e.cl != nil {
		return e.cl.Search(ctx, q, eps)
	}
	if e.sh != nil {
		return e.sh.SearchCtx(ctx, q, eps)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch e.opt.Method {
	case MethodSweepline:
		return e.sweep.Search(q, eps), nil
	case MethodKVIndex:
		return e.kv.Search(q, eps), nil
	case MethodISAX:
		return e.isx.Search(q, eps), nil
	default:
		// Traced queries run the counter-reporting traversal so the
		// span carries the same attrs the stats path records; the match
		// set is identical either way, and the untraced fast path stays
		// allocation-free.
		if obs.SpanFrom(ctx) != nil {
			_, tsp := obs.StartSpan(ctx, "traverse")
			ms, st := e.tsFrozen().SearchStats(q, eps)
			setStatsAttrs(tsp, st)
			tsp.End()
			return ms, nil
		}
		return e.tsFrozen().Search(q, eps), nil
	}
}

// PrepareQuery maps a raw-space query into the engine's normalized value
// space (identity under NormNone).
func (e *Engine) PrepareQuery(q []float64) []float64 {
	return e.ext.TransformQuery(q)
}

// SearchTopK returns the k nearest subsequences to q under Chebyshev
// distance (ascending), with exact distances filled in. Only TS-Index
// supports it.
func (e *Engine) SearchTopK(q []float64, k int) ([]Match, error) {
	return e.SearchTopKCtx(context.Background(), q, k)
}

// SearchTopKCtx is SearchTopK honoring cancellation (see SearchCtx).
func (e *Engine) SearchTopKCtx(ctx context.Context, q []float64, k int) ([]Match, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if e.opt.Method != MethodTSIndex {
		return nil, ErrTopKUnsupported
	}
	if len(q) != e.opt.L {
		return nil, fmt.Errorf("twinsearch: query length %d, engine built for L=%d", len(q), e.opt.L)
	}
	ctx, qo := e.beginQuery(ctx, qpTopK)
	tq := e.ext.TransformQuery(q)
	r, err := e.searchCached(ctx, qcache.PathTopK, q, float64(k), 0, func() (qcache.Result, error) {
		ms, err := e.searchTopKPreparedCtx(ctx, tq, k)
		return qcache.Result{Matches: ms}, err
	})
	e.endQuery(qo, err)
	return r.Matches, err
}

// searchTopKPreparedCtx dispatches a transformed top-k query to the
// engine's TS-Index backing.
func (e *Engine) searchTopKPreparedCtx(ctx context.Context, tq []float64, k int) ([]Match, error) {
	if e.cl != nil {
		return e.cl.SearchTopK(ctx, tq, k)
	}
	if e.sh != nil {
		return e.sh.SearchTopKCtx(ctx, tq, k, math.Inf(1))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.tsFrozen().SearchTopK(tq, k), nil
}

// Subsequence returns a copy of the indexed (normalized) window at
// position p — useful for inspecting matches in the engine's value
// space.
func (e *Engine) Subsequence(p int) ([]float64, error) {
	if p < 0 || p+e.opt.L > e.ext.Len() {
		return nil, fmt.Errorf("twinsearch: position %d out of range", p)
	}
	return e.ext.ExtractCopy(p, e.opt.L), nil
}

// Method returns the engine's search method.
func (e *Engine) Method() Method { return e.opt.Method }

// Norm returns the engine's normalization mode.
func (e *Engine) Norm() NormMode { return e.opt.Norm }

// Shards returns the number of index partitions the engine searches in
// parallel: 1 for every unsharded engine (including non-TS-Index
// methods), the effective shard count otherwise.
func (e *Engine) Shards() int {
	if e.cl != nil {
		return e.cl.TotalShards()
	}
	if e.sh != nil {
		return e.sh.NumShards()
	}
	return 1
}

// Cluster exposes the distributed coordinator behind an engine opened
// with Options.Topology (nil for every local engine) — internal/server
// reads it to report role and peer liveness.
func (e *Engine) Cluster() *cluster.Coordinator { return e.cl }

// Workers returns the size of the engine's query executor — the
// worker pool shared by sharded fan-out, SearchBatch, and approximate
// probes (see Options.Workers).
func (e *Engine) Workers() int { return e.ex.Workers() }

// L returns the configured subsequence length.
func (e *Engine) L() int { return e.opt.L }

// SeriesLen returns the number of timestamps in the indexed series.
func (e *Engine) SeriesLen() int { return e.ext.Len() }

// NumSubsequences returns how many windows the engine indexes.
func (e *Engine) NumSubsequences() int {
	return series.NumSubsequences(e.ext.Len(), e.opt.L)
}

// MemoryBytes estimates the total footprint of the index structure —
// heap-resident plus file-mapped bytes (0 for the sweepline, which has
// none). HeapBytes and MappedBytes report the two halves separately.
func (e *Engine) MemoryBytes() int {
	return e.HeapBytes() + e.MappedBytes()
}

// HeapBytes estimates the heap-resident bytes of the index structure:
// everything this process pays for exclusively. A mapped engine's flat
// arrays live in the page cache instead and appear under MappedBytes.
func (e *Engine) HeapBytes() int {
	switch e.opt.Method {
	case MethodKVIndex:
		return e.kv.MemoryBytes() + e.kv.AuxiliaryBytes()
	case MethodISAX:
		return e.isx.MemoryBytes()
	case MethodTSIndex:
		if e.cl != nil {
			return e.cl.MemoryBytes() // local topology entries only
		}
		if e.sh != nil {
			return e.sh.MemoryBytes()
		}
		total := e.tsFrozen().MemoryBytes()
		if e.ts != nil {
			total += e.ts.MemoryBytes() // pointer tree resident for appends
		}
		return total
	default:
		return 0
	}
}

// MappedBytes reports the file-mapped bytes of the index structure:
// arena arrays served straight from an mmap'd saved index
// (Options.MMap). These pages are shared with other processes mapping
// the same file and reclaimable by the kernel, so they are accounted
// separately from HeapBytes. Shards or trees re-frozen after Append
// migrate to the heap and leave this figure.
func (e *Engine) MappedBytes() int {
	if e.opt.Method != MethodTSIndex {
		return 0
	}
	if e.cl != nil {
		return e.cl.MappedBytes() // local topology entries only
	}
	if e.sh != nil {
		return e.sh.MappedBytes()
	}
	return e.tsFrozen().MappedBytes()
}

// PartitionByMean reports whether the engine's shards own mean-sorted
// position runs (see Options.PartitionByMean); always false unsharded.
func (e *Engine) PartitionByMean() bool {
	if e.cl != nil {
		return e.cl.PartitionByMean()
	}
	return e.sh != nil && e.sh.PartitionByMean()
}
