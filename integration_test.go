package twinsearch

// Cross-method integration and property tests: every index must return
// exactly the sweepline's result set on randomized inputs, parameters
// and normalization modes — the strongest correctness statement the
// filter-verification framework admits.

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"twinsearch/internal/datasets"
)

// TestPropertyAllMethodsEquivalent drives randomized (series, query,
// eps, mode, L) instances through all four methods and requires
// identical result sets.
func TestPropertyAllMethodsEquivalent(t *testing.T) {
	type instance struct {
		Seed    int64
		Kind    uint8
		ModeSel uint8
		LSel    uint8
		EpsSel  uint8
		QPos    uint16
	}
	f := func(in instance) bool {
		n := 1500
		var ts []float64
		switch in.Kind % 4 {
		case 0:
			ts = datasets.RandomWalk(in.Seed, n)
		case 1:
			// Seed%97 is negative for negative seeds; keep the period
			// strictly positive or the generator emits NaNs (sin of
			// ±Inf) that Open rightly rejects.
			ts = datasets.Sine(in.Seed, n, 80+float64(abs64(in.Seed)%97), 2, 0.2)
		case 2:
			ts = datasets.InsectN(in.Seed, n)
		default:
			ts = datasets.EEGN(in.Seed, n)
		}
		mode := []NormMode{NormNone, NormGlobal, NormPerSubsequence}[in.ModeSel%3]
		l := []int{20, 50, 100}[in.LSel%3]
		eps := []float64{0.05, 0.2, 0.5, 1.0}[in.EpsSel%4]
		if mode == NormNone {
			eps *= 5 // raw scales are wider
		}
		qp := int(in.QPos) % (n - l)
		q := append([]float64(nil), ts[qp:qp+l]...)

		var golden []Match
		for _, m := range allMethods {
			if m == MethodKVIndex && mode == NormPerSubsequence {
				continue
			}
			eng, err := Open(ts, Options{L: l, Method: m, Norm: mode, NormSet: true})
			if err != nil {
				t.Logf("open %v/%v: %v", m, mode, err)
				return false
			}
			ms, err := eng.Search(q, eps)
			if err != nil {
				t.Logf("search %v/%v: %v", m, mode, err)
				return false
			}
			if golden == nil {
				golden = ms
				continue
			}
			if len(ms) != len(golden) {
				t.Logf("%v/%v l=%d eps=%v: %d vs %d results", m, mode, l, eps, len(ms), len(golden))
				return false
			}
			for i := range golden {
				if ms[i].Start != golden[i].Start {
					t.Logf("%v/%v: rank %d differs", m, mode, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEpsilonMonotonicity: growing ε can only grow the result
// set, and every smaller-ε match survives.
func TestPropertyEpsilonMonotonicity(t *testing.T) {
	ts := datasets.EEGN(11, 5000)
	eng, err := Open(ts, Options{L: 100})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		qp := rng.Intn(len(ts) - 100)
		q := append([]float64(nil), ts[qp:qp+100]...)
		prev := map[int]bool{}
		prevLen := 0
		for _, eps := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
			ms, err := eng.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if len(ms) < prevLen {
				t.Fatalf("result set shrank when eps grew")
			}
			now := map[int]bool{}
			for _, m := range ms {
				now[m.Start] = true
			}
			for p := range prev {
				if !now[p] {
					t.Fatalf("match at %d lost when eps grew", p)
				}
			}
			prev, prevLen = now, len(ms)
		}
	}
}

// TestConcurrentSearches: one engine, many goroutines — searches are
// read-only and must race-cleanly return identical answers (run under
// -race in CI).
func TestConcurrentSearches(t *testing.T) {
	ts := datasets.InsectN(3, 20000)
	for _, method := range allMethods {
		for _, norm := range []NormMode{NormGlobal, NormPerSubsequence} {
			if method == MethodKVIndex && norm == NormPerSubsequence {
				continue
			}
			eng, err := Open(ts, Options{L: 100, Method: method, Norm: norm, NormSet: true})
			if err != nil {
				t.Fatal(err)
			}
			queries := datasets.Queries(ts, 17, 8, 100)
			want := make([][]Match, len(queries))
			for i, q := range queries {
				if want[i], err = eng.Search(q, 0.4); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			errs := make(chan error, 32)
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i, q := range queries {
						ms, err := eng.Search(q, 0.4)
						if err != nil {
							errs <- err
							return
						}
						if len(ms) != len(want[i]) {
							errs <- errMismatch
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("%v/%v: %v", method, norm, err)
			}
		}
	}
}

var errMismatch = errorString("concurrent search result mismatch")

// abs64 is |v| with the int64 minimum clamped to a positive value.
func abs64(v int64) int64 {
	if v == math.MinInt64 {
		return math.MaxInt64
	}
	if v < 0 {
		return -v
	}
	return v
}

type errorString string

func (e errorString) Error() string { return string(e) }
