package twinsearch_test

import (
	"fmt"
	"math"

	"twinsearch"
)

// sawtooth builds a deterministic periodic fixture: the same ramp shape
// every period, so twin structure is predictable.
func sawtooth(n, period int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i % period)
	}
	return out
}

func ExampleOpen() {
	data := sawtooth(1000, 50)
	eng, err := twinsearch.Open(data, twinsearch.Options{L: 50, NormSet: true}) // raw values
	if err != nil {
		panic(err)
	}
	// The window starting at 100 repeats every 50 points.
	matches, err := eng.Search(data[100:150], 0.001)
	if err != nil {
		panic(err)
	}
	fmt.Println("twins:", len(matches), "first:", matches[0].Start, "second:", matches[1].Start)
	// Output: twins: 20 first: 0 second: 50
}

func ExampleEngine_SearchTopK() {
	data := sawtooth(500, 40)
	// Perturb one period slightly so ranks are distinct.
	data[203] += 0.25
	eng, err := twinsearch.Open(data, twinsearch.Options{L: 40, NormSet: true})
	if err != nil {
		panic(err)
	}
	top, err := eng.SearchTopK(data[80:120], 3)
	if err != nil {
		panic(err)
	}
	for _, m := range top {
		fmt.Printf("start=%d dist=%.2f\n", m.Start, m.Dist)
	}
	// Output:
	// start=0 dist=0.00
	// start=40 dist=0.00
	// start=80 dist=0.00
}

func ExampleEngine_Search_normalized() {
	// Two periods at different amplitudes: raw values differ, but
	// per-subsequence normalization matches them by shape.
	data := make([]float64, 400)
	for i := range data {
		amp := 1.0
		if i >= 200 {
			amp = 5.0 // same shape, 5x the amplitude
		}
		data[i] = amp * math.Sin(2*math.Pi*float64(i%100)/100)
	}
	eng, err := twinsearch.Open(data, twinsearch.Options{
		L:    100,
		Norm: twinsearch.NormPerSubsequence,
	})
	if err != nil {
		panic(err)
	}
	matches, err := eng.Search(data[0:100], 0.001)
	if err != nil {
		panic(err)
	}
	aligned := 0
	for _, m := range matches {
		if m.Start%100 == 0 {
			aligned++
		}
	}
	fmt.Println("period-aligned shape twins:", aligned)
	// Output: period-aligned shape twins: 4
}

func ExampleEngine_Append() {
	data := sawtooth(300, 30)
	eng, err := twinsearch.Open(data, twinsearch.Options{L: 30, NormSet: true})
	if err != nil {
		panic(err)
	}
	before := eng.NumSubsequences()
	if err := eng.Append(sawtooth(60, 30)...); err != nil {
		panic(err)
	}
	fmt.Println("windows:", before, "->", eng.NumSubsequences())
	// Output: windows: 271 -> 331
}
