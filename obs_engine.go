package twinsearch

import (
	"context"
	"fmt"
	"time"

	"twinsearch/internal/core"
	"twinsearch/internal/obs"
)

// qpath indexes the five raw-query search paths for the pre-resolved
// metric arrays: the hot path never formats a label or hashes a map.
type qpath uint8

const (
	qpSearch qpath = iota
	qpStats
	qpTopK
	qpPrefix
	qpApprox
	numQPaths
)

var qpathNames = [numQPaths]string{"search", "stats", "topk", "prefix", "approx"}

// engineMetrics is the engine's metric set: one registry plus the
// per-path counters and latency histograms resolved once at
// construction. Every raw-query entry point feeds them, traced or not.
type engineMetrics struct {
	reg     *obs.Registry
	queries [numQPaths]*obs.Counter
	errors  [numQPaths]*obs.Counter
	seconds [numQPaths]*obs.Histogram
	traces  *obs.Counter
}

func newEngineMetrics() *engineMetrics {
	m := &engineMetrics{reg: obs.NewRegistry()}
	for p := qpath(0); p < numQPaths; p++ {
		label := `{path="` + qpathNames[p] + `"}`
		m.queries[p] = m.reg.Counter("twinsearch_queries_total" + label)
		m.errors[p] = m.reg.Counter("twinsearch_query_errors_total" + label)
		m.seconds[p] = m.reg.Histogram("twinsearch_query_seconds"+label, obs.DefLatencyBuckets)
	}
	m.traces = m.reg.Counter("twinsearch_traces_total")
	return m
}

// registerEngineGauges bridges the engine's existing counters — epoch,
// cache hit/miss/eviction totals, executor steals, worker count — into
// the registry as scrape-time funcs. Called once from newEngine; e is
// fully usable by scrape time even though indexes attach later.
func (e *Engine) registerEngineGauges() {
	reg := e.met.reg
	reg.GaugeFunc("twinsearch_epoch", func() float64 { return float64(e.Epoch()) })
	reg.GaugeFunc("twinsearch_workers", func() float64 { return float64(e.ex.Workers()) })
	reg.CounterFunc("twinsearch_executor_steals_total", func() float64 { return float64(e.ex.Steals()) })
	reg.CounterFunc("twinsearch_slowlog_entries_total", func() float64 { return float64(e.slow.Total()) })
	if e.plan != nil {
		reg.CounterFunc(`twinsearch_cache_hits_total{cache="plan"}`, func() float64 { return float64(e.plan.Stats().Hits) })
		reg.CounterFunc(`twinsearch_cache_misses_total{cache="plan"}`, func() float64 { return float64(e.plan.Stats().Misses) })
		reg.CounterFunc(`twinsearch_cache_evictions_total{cache="plan"}`, func() float64 { return float64(e.plan.Stats().Evictions) })
		reg.GaugeFunc(`twinsearch_cache_entries{cache="plan"}`, func() float64 { return float64(e.plan.Stats().Entries) })
	}
	if e.res != nil {
		reg.CounterFunc(`twinsearch_cache_hits_total{cache="result"}`, func() float64 { return float64(e.res.Stats().Hits) })
		reg.CounterFunc(`twinsearch_cache_misses_total{cache="result"}`, func() float64 { return float64(e.res.Stats().Misses) })
		reg.CounterFunc(`twinsearch_cache_evictions_total{cache="result"}`, func() float64 { return float64(e.res.Stats().Evictions) })
		reg.GaugeFunc(`twinsearch_cache_entries{cache="result"}`, func() float64 { return float64(e.res.Stats().Entries) })
		reg.GaugeFunc(`twinsearch_cache_bytes{cache="result"}`, func() float64 { return float64(e.res.Stats().Bytes) })
	}
}

// registerClusterGauges surfaces the coordinator's cached membership
// view — liveness and breaker state per node — as gauges. Called from
// Open once the coordinator exists; the peer set is static (the
// topology file fixed it).
func (e *Engine) registerClusterGauges() {
	reg := e.met.reg
	for _, ps := range e.cl.Health() {
		name := ps.Name
		reg.GaugeFunc(fmt.Sprintf("twinsearch_cluster_node_alive{node=%q}", name), func() float64 {
			for _, p := range e.cl.Health() {
				if p.Name == name && p.Alive {
					return 1
				}
			}
			return 0
		})
		reg.GaugeFunc(fmt.Sprintf("twinsearch_cluster_breaker_open{node=%q}", name), func() float64 {
			for _, p := range e.cl.Health() {
				if p.Name == name && p.Breaker != "closed" {
					return 1
				}
			}
			return 0
		})
	}
}

// Metrics returns the engine's metric registry — the payload behind
// the server's GET /metrics. Always non-nil; serving layers may
// register additional metrics (admission gauges) into it.
func (e *Engine) Metrics() *obs.Registry { return e.met.reg }

// SlowLog returns the engine's slow-query log, nil unless
// Options.SlowLogSize enabled it.
func (e *Engine) SlowLog() *obs.SlowLog { return e.slow }

// queryObs is the per-query observation state beginQuery hands to
// endQuery. A plain value — the disabled-tracing path must not
// allocate.
type queryObs struct {
	t0    time.Time
	root  *obs.Span // the query's current root span; nil when untraced
	owned bool      // the engine created (and must end) the trace
	path  qpath
}

// beginQuery opens one raw-query observation: it stamps the start
// time for the latency histogram and resolves tracing — a span already
// in ctx (forced, e.g. ?trace=1) is adopted, otherwise the sampler may
// start an engine-owned trace. With tracing off this allocates
// nothing.
func (e *Engine) beginQuery(ctx context.Context, p qpath) (context.Context, queryObs) {
	qo := queryObs{t0: time.Now(), path: p}
	if sp := obs.SpanFrom(ctx); sp != nil {
		qo.root = sp
	} else if e.sampler.Sample() {
		tr := obs.NewTrace("query:" + qpathNames[p])
		qo.root, qo.owned = tr.Root, true
		ctx = obs.WithSpan(ctx, tr.Root)
	}
	return ctx, qo
}

// endQuery closes the observation: per-path counters and latency
// histogram always; trace completion and the slow-query log when they
// apply. Allocation-free when the query was untraced and fast.
func (e *Engine) endQuery(qo queryObs, err error) {
	d := time.Since(qo.t0)
	e.met.queries[qo.path].Inc()
	if err != nil {
		e.met.errors[qo.path].Inc()
	}
	e.met.seconds[qo.path].Observe(d.Seconds())
	if qo.root != nil {
		if qo.owned {
			qo.root.End()
		}
		e.met.traces.Inc()
	}
	if th := e.slow.Threshold(); th > 0 && d >= th {
		ent := obs.SlowEntry{
			Time:       time.Now(),
			Path:       qpathNames[qo.path],
			DurationMs: float64(d) / float64(time.Millisecond),
			Trace:      qo.root.Clone(),
		}
		if err != nil {
			ent.Err = err.Error()
		}
		e.slow.Add(ent)
	}
}

// validateQueryCtx is validateQuery wrapped in a "validate" span when
// the query is traced, annotated with the plan-cache outcome. The
// untraced path falls straight through.
func (e *Engine) validateQueryCtx(ctx context.Context, q []float64, eps float64) ([]float64, error) {
	sp := obs.SpanFrom(ctx)
	if sp == nil {
		return e.validateQuery(q, eps)
	}
	vs := sp.StartChild("validate")
	defer vs.End()
	tq, hit, err := e.validateQueryHit(q, eps)
	switch {
	case e.plan == nil:
		vs.Set("plan_cache", "off")
	case hit:
		vs.Set("plan_cache", "hit")
	default:
		vs.Set("plan_cache", "miss")
	}
	if err != nil {
		vs.Set("error", err.Error())
	}
	return tq, err
}

// setStatsAttrs copies one traversal's counters onto a span. Nil-safe.
func setStatsAttrs(sp *obs.Span, st core.Stats) {
	if sp == nil {
		return
	}
	sp.Set("nodes_visited", st.NodesVisited)
	sp.Set("nodes_pruned", st.NodesPruned)
	sp.Set("leaves_reached", st.LeavesReached)
	sp.Set("candidates", st.Candidates)
	sp.Set("abandons", st.Abandons)
	sp.Set("results", st.Results)
}
