// Package gen exposes the repository's deterministic synthetic time
// series generators as public API, so examples and downstream users can
// produce realistic workloads without the paper's proprietary
// recordings: an EEG-like signal (amplitude-modulated band oscillations
// with sporadic spike-wave events), an insect-telemetry-like signal (a
// motif library of stereotyped waveform episodes), and simple fixtures.
package gen

import "twinsearch/internal/datasets"

// Paper dataset lengths.
const (
	InsectLen = datasets.InsectLen
	EEGLen    = datasets.EEGLen
)

// EEG generates an EEG-like series with n points at a nominal 500 Hz.
// It is deterministic in seed.
func EEG(seed int64, n int) []float64 { return datasets.EEGN(seed, n) }

// Insect generates an insect-telemetry-like series with n points at a
// nominal 36 Hz. It is deterministic in seed.
func Insect(seed int64, n int) []float64 { return datasets.InsectN(seed, n) }

// RandomWalk generates a Gaussian random walk.
func RandomWalk(seed int64, n int) []float64 { return datasets.RandomWalk(seed, n) }

// Sine generates amp·sin(2π·i/period) + noise·N(0,1).
func Sine(seed int64, n int, period, amp, noise float64) []float64 {
	return datasets.Sine(seed, n, period, amp, noise)
}

// Queries samples count query subsequences of length l from t, the way
// the paper builds its workloads.
func Queries(t []float64, seed int64, count, l int) [][]float64 {
	return datasets.Queries(t, seed, count, l)
}
