package gen

import "testing"

func TestWrappersDelegate(t *testing.T) {
	if len(EEG(1, 100)) != 100 || len(Insect(1, 100)) != 100 {
		t.Fatal("length mismatch")
	}
	if len(RandomWalk(1, 50)) != 50 || len(Sine(1, 50, 10, 1, 0)) != 50 {
		t.Fatal("fixture length mismatch")
	}
	qs := Queries(RandomWalk(2, 1000), 3, 7, 64)
	if len(qs) != 7 || len(qs[0]) != 64 {
		t.Fatal("query sampling mismatch")
	}
	if InsectLen != 64436 || EEGLen != 1801999 {
		t.Fatal("paper lengths changed")
	}
}
