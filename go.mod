module twinsearch

go 1.24
