// Command tsplot draws a series file — and optionally the twins of a
// query window — as an ASCII chart in the terminal.
//
// Usage:
//
//	tsplot -series eeg.f64                          # just the series
//	tsplot -series eeg.f64 -qstart 5000 -l 100 -eps 0.3   # shade the twins
//	tsplot -series eeg.f64 -from 10000 -to 30000    # zoom into a range
package main

import (
	"flag"
	"fmt"
	"os"

	"twinsearch"
	"twinsearch/internal/plot"
	"twinsearch/internal/store"
)

func main() {
	var (
		seriesPath = flag.String("series", "", "series file (binary float64, required)")
		qStart     = flag.Int("qstart", -1, "query = series window starting here (enables twin shading)")
		l          = flag.Int("l", 100, "subsequence length")
		eps        = flag.Float64("eps", 0.2, "Chebyshev threshold")
		from       = flag.Int("from", 0, "plot range start")
		to         = flag.Int("to", 0, "plot range end (0 = end of series)")
		width      = flag.Int("width", 120, "chart width")
		height     = flag.Int("height", 18, "chart height")
	)
	flag.Parse()
	if *seriesPath == "" {
		fmt.Fprintln(os.Stderr, "tsplot: -series is required")
		flag.Usage()
		os.Exit(2)
	}
	data, err := store.ReadFile(*seriesPath)
	if err != nil {
		fatal(err)
	}
	if *to <= 0 || *to > len(data) {
		*to = len(data)
	}
	if *from < 0 || *from >= *to {
		fatal(fmt.Errorf("bad range [%d, %d)", *from, *to))
	}

	if *qStart < 0 {
		fmt.Print(plot.Series(data[*from:*to], plot.Config{Width: *width, Height: *height}))
		return
	}

	eng, err := twinsearch.Open(data, twinsearch.Options{L: *l})
	if err != nil {
		fatal(err)
	}
	q := data[*qStart : *qStart+*l]
	matches, err := eng.Search(q, *eps)
	if err != nil {
		fatal(err)
	}
	var starts []int
	for _, m := range matches {
		if m.Start >= *from && m.Start+*l <= *to {
			starts = append(starts, m.Start-*from)
		}
	}
	fmt.Printf("query window [%d, %d), eps=%g → %d twins (%d in plotted range)\n\n",
		*qStart, *qStart+*l, *eps, len(matches), len(starts))
	fmt.Print(plot.Matches(data[*from:*to], starts, *l, plot.Config{Width: *width, Height: *height}))
	fmt.Println("\nquery shape:", plot.Sparkline(q, 60))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tsplot: %v\n", err)
	os.Exit(1)
}
