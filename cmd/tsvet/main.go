// Command tsvet is the project's invariant checker: it runs the
// internal/analysis suite (unsafeview, frozenwrite, nogoroutine,
// ctxflow, closedguard, obsflow) over twinsearch packages.
//
// Two modes share the same analyzers:
//
//	tsvet ./...                  standalone: loads packages itself
//	                             (via go list -export) and prints
//	                             findings; exit 1 if any.
//	go vet -vettool=$(path) ...  driver mode: speaks the go vet unit
//	                             checker protocol, so findings are
//	                             cached, incremental, and cover test
//	                             files exactly like the stock vet.
//
// Suppress a finding with //tsvet:ignore <reason> on the offending
// line or alone on the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"twinsearch/internal/analysis"
	"twinsearch/internal/analysis/load"
)

func main() {
	// go vet probes and drives the tool with reserved argument shapes;
	// route them before flag parsing.
	if len(os.Args) > 1 {
		switch {
		case os.Args[1] == "-V=full":
			printVersion()
			return
		case os.Args[1] == "-flags":
			printFlagDefs()
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(unitcheck(os.Args[1]))
		}
	}

	tests := flag.Bool("test", true, "also analyze test files (test-variant packages)")
	dir := flag.String("C", ".", "run as if started in this directory")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tsvet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := load.Packages(fset, *dir, patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsvet:", err)
		os.Exit(2)
	}
	// A test-variant package ("pkg [pkg.test]") re-analyzes the
	// package's non-test files; report each finding once.
	seen := map[string]bool{}
	found := false
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(fset, pkg.Files, pkg.Pkg, pkg.Info, analysis.Suite())
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsvet:", err)
			os.Exit(2)
		}
		ignores, bad := analysis.ParseIgnores(fset, pkg.Files)
		for _, d := range append(ignores.Filter(fset, diags), bad...) {
			line := fmt.Sprintf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
			if seen[line] {
				continue
			}
			seen[line] = true
			found = true
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if found {
		os.Exit(1)
	}
}
