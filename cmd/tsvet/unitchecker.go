package main

// The go vet unit-checker protocol, reimplemented on the stdlib (the
// canonical implementation lives in golang.org/x/tools/go/analysis/
// unitchecker, which this environment cannot fetch). The contract:
//
//   - `tool -V=full` prints "name version ... buildID=..." — the go
//     command folds it into its action cache key, so analyzer changes
//     invalidate cached vet results.
//   - `tool -flags` prints a JSON description of supported flags.
//   - `tool <file>.cfg` analyzes one package: the cfg names the source
//     files and maps every import to a compiled export-data file. The
//     tool writes an (empty — the suite is fact-free) .vetx facts file
//     to cfg.VetxOutput, prints findings to stderr, and exits 2 if
//     there were any.
//
// Facts-only invocations (VetxOnly, issued for dependencies) write the
// facts file and skip analysis entirely, which keeps `go vet
// -vettool=tsvet ./...` O(changed packages) like the stock vet.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"twinsearch/internal/analysis"
)

// vetConfig mirrors the fields cmd/go writes into the .cfg file (a
// superset is tolerated by json decoding).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers -V=full in the exact shape cmd/go's tool-ID
// probe parses: "<name> version <semantics...>". Hashing the executable
// itself makes any rebuild of the analyzers a new cache key.
func printVersion() {
	name := filepath.Base(os.Args[0])
	var id string
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	if id == "" {
		id = "unknown"
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", name, id)
}

// printFlagDefs answers -flags: the JSON flag inventory cmd/go uses to
// decide which command-line flags it may forward. tsvet keeps none
// forwardable — the suite always runs whole.
func printFlagDefs() {
	fmt.Println("[]")
}

// unitcheck analyzes the single package described by cfgFile and
// returns the process exit code.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsvet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tsvet: parsing %s: %v\n", cfgFile, err)
		return 2
	}

	// Facts file first: the go command expects it to exist even when
	// the run is facts-only or finds nothing. The suite carries no
	// facts, so the file is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "tsvet:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "tsvet:", err)
			return 2
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "tsvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags, err := analysis.RunAnalyzers(fset, files, pkg, info, analysis.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsvet:", err)
		return 2
	}
	ignores, bad := analysis.ParseIgnores(fset, files)
	diags = append(ignores.Filter(fset, diags), bad...)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
