package main

import (
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"twinsearch/internal/analysis"
	"twinsearch/internal/analysis/load"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestSuiteCleanOverTree is the invariant the analyzers exist to hold:
// the suite, with suppressions applied, finds nothing in the tree as
// committed. Any new finding is either a real violation (fix it) or a
// sanctioned exception (annotate it with //tsvet:ignore <reason>).
func TestSuiteCleanOverTree(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	pkgs, err := load.Packages(fset, root, []string{"./..."}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(fset, pkg.Files, pkg.Pkg, pkg.Info, analysis.Suite())
		if err != nil {
			t.Fatal(err)
		}
		ignores, bad := analysis.ParseIgnores(fset, pkg.Files)
		for _, d := range append(ignores.Filter(fset, diags), bad...) {
			t.Errorf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}

// TestVettoolProtocol drives the binary exactly the way CI does: build
// it, then run `go vet -vettool=tsvet ./...` over the module. This
// exercises the -V=full / -flags / <file>.cfg protocol end to end
// against the real go command, not a mock.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module twice; skipped in -short")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "tsvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/tsvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tsvet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}
