// Command tsserve loads a series, builds (or reopens) a TS-Index over
// it, and serves twin subsequence search over HTTP with a JSON API.
//
// Standalone (the default role):
//
//	tsserve -series eeg.f64 -l 100 -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/search -d '{"query":[...100 values...],"eps":0.3}'
//	curl -s -X POST localhost:8080/topk   -d '{"query":[...],"k":5}'
//	curl -s -X POST localhost:8080/append -d '{"values":[...]}'
//
// Distributed, over a saved TSSH v3 index and a topology file (see
// internal/cluster): each node memory-maps only its assigned shard
// segments and serves the shard RPC; the coordinator fans queries out
// and merges deterministically — answers are byte-identical to one
// local engine.
//
//	tsserve -role node        -series eeg.f64 -topology topo.json -name n1
//	tsserve -role coordinator -series eeg.f64 -topology topo.json -l 100 -addr :8080
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"syscall"
	"time"

	"twinsearch"
	"twinsearch/internal/cluster"
	"twinsearch/internal/series"
	"twinsearch/internal/server"
	"twinsearch/internal/store"
)

func main() {
	var (
		seriesPath  = flag.String("series", "", "series file (binary float64, required)")
		l           = flag.Int("l", 100, "indexed subsequence length")
		addr        = flag.String("addr", ":8080", "listen address (node role defaults to its topology entry's port)")
		norm        = flag.String("norm", "global", "normalization: raw, global, persub")
		loadIndex   = flag.String("loadindex", "", "reopen a persisted TS-Index instead of rebuilding")
		mmapIndex   = flag.Bool("mmap", false, "memory-map the saved index instead of reading it: near-zero open cost, demand paging, one physical copy shared across processes (with -loadindex, or local entries of -topology)")
		prefetch    = flag.Bool("prefetch", false, "warm a memory-mapped index at open (madvise + bounded touch pass) instead of paying the page-fault tail on the first queries")
		shards      = flag.Int("shards", 0, "index partitions built and searched in parallel (0 = one index, -1 = one per CPU)")
		meanShards  = flag.Bool("meanshards", false, "partition shards by window mean instead of contiguous ranges (tighter per-shard bounds; needs -shards above 1)")
		workers     = flag.Int("workers", 0, "query-executor workers shared by all requests (0 = one per CPU)")
		role        = flag.String("role", "standalone", "serving role: standalone, node (serve assigned shards of a saved index), coordinator (fan out over a cluster)")
		topology    = flag.String("topology", "", "cluster topology file (node and coordinator roles)")
		nodeName    = flag.String("name", "", "this node's name in the topology (node role)")
		nodeTimeout = flag.Duration("node-timeout", 0, "per-attempt RPC deadline for coordinator fan-out; an attempt missing it fails over to the next replica (0 = 10s default)")
		hedge       = flag.Duration("hedge", 0, "coordinator hedging delay: re-issue a query unit to a second replica after this long and take the first response (0 = off; needs a replicated topology)")
		brkFails    = flag.Int("breaker-fails", 0, "consecutive failures that trip a node's circuit breaker, demoting it in the replica attempt order until a health probe recovers it (0 = 3 default)")
		healthEvery = flag.Duration("health-interval", 0, "coordinator background health-sweep period feeding /healthz's cached membership view (0 = 2s default, negative = off)")
		planCache   = flag.Int("plan-cache", -1, "prepared-query plan cache entries: repeated query bytes skip validation and normalization (-1 = default size, 0 = off)")
		resultCache = flag.Int("result-cache-bytes", -1, "result cache byte budget: whole answers keyed by (query, params, path, epoch), invalidated by Append via the epoch (-1 = default 32MiB, 0 = off)")
		maxInflight = flag.Int("max-inflight", 0, "admission control: max concurrently executing queries; past it requests queue up to -max-queue, then shed with 429 + Retry-After (0 = unlimited)")
		maxQueue    = flag.Int("max-queue", 64, "admission control: requests allowed to wait for an in-flight slot before shedding (needs -max-inflight)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint written on shed (429) responses")
		traceSample = flag.Int("trace-sample", 0, "trace 1 in N queries into the metrics/slowlog pipeline (0 = off; ?trace=1 forces a trace per request regardless)")
		slowThresh  = flag.Duration("slowlog-threshold", 100*time.Millisecond, "queries at least this slow are recorded in the slow-query log at /debug/slowlog")
		slowSize    = flag.Int("slowlog-size", 128, "slow-query log ring-buffer capacity (0 = off)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default; drain-exempt when on)")
	)
	flag.Parse()
	if *seriesPath == "" {
		fmt.Fprintln(os.Stderr, "tsserve: -series is required")
		flag.Usage()
		os.Exit(2)
	}

	data, err := store.ReadFile(*seriesPath)
	if err != nil {
		fatal(err)
	}
	normMode, err := parseNorm(*norm)
	if err != nil {
		fatal(err)
	}

	addrSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "addr" {
			addrSet = true
		}
	})
	srvCfg := server.Config{MaxInflight: *maxInflight, MaxQueue: *maxQueue, RetryAfter: *retryAfter}

	switch *role {
	case "node":
		if *topology == "" || *nodeName == "" {
			fatal(fmt.Errorf("-role node requires -topology and -name"))
		}
		serveNode(data, normMode, *topology, *nodeName, *addr, addrSet, *workers, *prefetch, *pprofOn)
	case "coordinator":
		if *topology == "" {
			fatal(fmt.Errorf("-role coordinator requires -topology"))
		}
		opt := twinsearch.Options{L: *l, Norm: normMode, NormSet: true,
			Workers: *workers, Topology: *topology, ClusterTimeout: *nodeTimeout,
			ClusterHedge: *hedge, ClusterBreakerFails: *brkFails, ClusterRefresh: *healthEvery,
			MMap: *mmapIndex, Prefetch: *prefetch,
			PlanCache: *planCache, ResultCacheBytes: *resultCache,
			TraceSample: *traceSample, SlowLogSize: *slowSize, SlowLogThreshold: *slowThresh}
		serveEngine(data, opt, "", *addr, srvCfg, *pprofOn)
	case "standalone":
		if *mmapIndex && *loadIndex == "" {
			fatal(fmt.Errorf("-mmap requires -loadindex (only a saved index can be mapped)"))
		}
		opt := twinsearch.Options{L: *l, Norm: normMode, NormSet: true, Shards: *shards,
			PartitionByMean: *meanShards, Workers: *workers, MMap: *mmapIndex, Prefetch: *prefetch,
			PlanCache: *planCache, ResultCacheBytes: *resultCache,
			TraceSample: *traceSample, SlowLogSize: *slowSize, SlowLogThreshold: *slowThresh}
		serveEngine(data, opt, *loadIndex, *addr, srvCfg, *pprofOn)
	default:
		fatal(fmt.Errorf("unknown role %q", *role))
	}
}

// withPprof optionally mounts net/http/pprof's handlers ahead of h.
// They are routed before the role handler's own mux, so profiling works
// identically for all three roles and stays reachable while the server
// drains (the drain gate lives inside h).
func withPprof(h http.Handler, on bool) http.Handler {
	if !on {
		return h
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

// serveEngine runs the standalone and coordinator roles: build or
// reopen (or cluster-open) an engine and serve the public JSON API.
func serveEngine(data []float64, opt twinsearch.Options, loadIndex, addr string, cfg server.Config, pprofOn bool) {
	start := time.Now()
	var eng *twinsearch.Engine
	var err error
	if loadIndex != "" {
		eng, err = twinsearch.OpenSavedFile(data, loadIndex, opt)
	} else {
		eng, err = twinsearch.Open(data, opt)
	}
	if err != nil {
		fatal(err)
	}
	mapped := ""
	if mb := eng.MappedBytes(); mb > 0 {
		mapped = fmt.Sprintf(" (%d bytes mmap-resident)", mb)
	}
	if cl := eng.Cluster(); cl != nil {
		fmt.Printf("tsserve: coordinator over %d node(s) / %d shard(s), %d windows of length %d, ready in %v%s; listening on %s\n",
			len(cl.Peers()), cl.TotalShards(), eng.NumSubsequences(), eng.L(),
			time.Since(start).Round(time.Millisecond), mapped, addr)
	} else {
		fmt.Printf("tsserve: %d windows of length %d in %d shard(s), %d executor worker(s), ready in %v%s; listening on %s\n",
			eng.NumSubsequences(), eng.L(), eng.Shards(), eng.Workers(),
			time.Since(start).Round(time.Millisecond), mapped, addr)
	}
	h := server.NewWithConfig(eng, cfg)
	serveUntilSignal(addr, withPprof(h, pprofOn), h.BeginDrain, eng.Close)
}

// serveNode runs the node role: selectively open the assigned shard
// subset and serve the shard RPC.
func serveNode(data []float64, norm series.NormMode, topoPath, name, addr string, addrSet bool, workers int, prefetch, pprofOn bool) {
	topo, err := cluster.LoadTopology(topoPath)
	if err != nil {
		fatal(err)
	}
	if !addrSet {
		// Listen where the topology says peers will dial this node. A
		// dial URL we cannot derive a port from would silently leave
		// the node on the unrelated default while peers dial elsewhere,
		// so demand an explicit -addr instead.
		spec, err := topo.Node(name)
		if err != nil {
			fatal(err)
		}
		derived, err := listenAddrOf(spec.Addr)
		if err != nil {
			fatal(fmt.Errorf("cannot derive a listen port from topology addr %q (%v); pass -addr explicitly", spec.Addr, err))
		}
		addr = derived
	}
	start := time.Now()
	ext := series.NewExtractor(data, norm)
	n, err := cluster.OpenNode(topo, name, ext, cluster.NodeOptions{Workers: workers, Prefetch: prefetch})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tsserve: node %q serving shards %v (%d of %d windows, %d bytes mapped), ready in %v; listening on %s\n",
		name, n.Sub.ShardIDs(), n.Sub.Windows(), series.NumSubsequences(ext.Len(), n.Sub.L()),
		n.Sub.MappedBytes(), time.Since(start).Round(time.Millisecond), addr)
	h := server.NewNode(n)
	serveUntilSignal(addr, withPprof(h, pprofOn), h.BeginDrain, n.Close)
}

// listenAddrOf turns a topology dial URL into a listen address
// (":8081" from "http://10.0.0.5:8081").
func listenAddrOf(dial string) (string, error) {
	u, err := url.Parse(dial)
	if err != nil {
		return "", err
	}
	if p := u.Port(); p != "" {
		return ":" + p, nil
	}
	return "", fmt.Errorf("no port in %q", dial)
}

// serveUntilSignal serves h until SIGINT/SIGTERM, then drains: new
// queries get 503 immediately, in-flight requests finish, and only then
// does closeFn release resources (a mapped engine must never unmap
// under a live traversal).
func serveUntilSignal(addr string, h http.Handler, beginDrain func(), closeFn func() error) {
	srv := &http.Server{Addr: addr, Handler: h}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-stop
		beginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	if err := <-done; err != nil {
		// Shutdown timed out: requests may still be traversing mapped
		// arenas, so closing (unmapping) under them would crash. Exit
		// and let the OS reclaim everything instead.
		fmt.Fprintf(os.Stderr, "tsserve: shutdown: %v; exiting without unmapping\n", err)
		os.Exit(1)
	}
	if err := closeFn(); err != nil {
		fatal(err)
	}
	fmt.Println("tsserve: closed, bye")
}

func parseNorm(s string) (series.NormMode, error) {
	switch s {
	case "raw":
		return twinsearch.NormNone, nil
	case "global":
		return twinsearch.NormGlobal, nil
	case "persub":
		return twinsearch.NormPerSubsequence, nil
	default:
		return 0, fmt.Errorf("unknown norm %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tsserve: %v\n", err)
	os.Exit(1)
}
