// Command tsserve loads a series, builds (or reopens) a TS-Index over
// it, and serves twin subsequence search over HTTP with a JSON API.
//
//	tsserve -series eeg.f64 -l 100 -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/search -d '{"query":[...100 values...],"eps":0.3}'
//	curl -s -X POST localhost:8080/topk   -d '{"query":[...],"k":5}'
//	curl -s -X POST localhost:8080/append -d '{"values":[...]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"twinsearch"
	"twinsearch/internal/server"
	"twinsearch/internal/store"
)

func main() {
	var (
		seriesPath = flag.String("series", "", "series file (binary float64, required)")
		l          = flag.Int("l", 100, "indexed subsequence length")
		addr       = flag.String("addr", ":8080", "listen address")
		norm       = flag.String("norm", "global", "normalization: raw, global, persub")
		loadIndex  = flag.String("loadindex", "", "reopen a persisted TS-Index instead of rebuilding")
		mmapIndex  = flag.Bool("mmap", false, "memory-map the -loadindex file instead of reading it: near-zero open cost, demand paging, one physical copy shared across processes")
		shards     = flag.Int("shards", 0, "index partitions built and searched in parallel (0 = one index, -1 = one per CPU)")
		meanShards = flag.Bool("meanshards", false, "partition shards by window mean instead of contiguous ranges (tighter per-shard bounds; needs -shards above 1)")
		workers    = flag.Int("workers", 0, "query-executor workers shared by all requests (0 = one per CPU)")
	)
	flag.Parse()
	if *seriesPath == "" {
		fmt.Fprintln(os.Stderr, "tsserve: -series is required")
		flag.Usage()
		os.Exit(2)
	}
	if *mmapIndex && *loadIndex == "" {
		fatal(fmt.Errorf("-mmap requires -loadindex (only a saved index can be mapped)"))
	}

	data, err := store.ReadFile(*seriesPath)
	if err != nil {
		fatal(err)
	}
	opt := twinsearch.Options{L: *l, NormSet: true, Shards: *shards,
		PartitionByMean: *meanShards, Workers: *workers, MMap: *mmapIndex}
	switch *norm {
	case "raw":
		opt.Norm = twinsearch.NormNone
	case "global":
		opt.Norm = twinsearch.NormGlobal
	case "persub":
		opt.Norm = twinsearch.NormPerSubsequence
	default:
		fatal(fmt.Errorf("unknown norm %q", *norm))
	}

	start := time.Now()
	var eng *twinsearch.Engine
	if *loadIndex != "" {
		eng, err = twinsearch.OpenSavedFile(data, *loadIndex, opt)
	} else {
		eng, err = twinsearch.Open(data, opt)
	}
	if err != nil {
		fatal(err)
	}
	mapped := ""
	if mb := eng.MappedBytes(); mb > 0 {
		mapped = fmt.Sprintf(" (%d bytes mmap-resident)", mb)
	}
	fmt.Printf("tsserve: %d windows of length %d in %d shard(s), %d executor worker(s), ready in %v%s; listening on %s\n",
		eng.NumSubsequences(), eng.L(), eng.Shards(), eng.Workers(), time.Since(start).Round(time.Millisecond), mapped, *addr)

	// Serve until SIGINT/SIGTERM, then drain in-flight requests before
	// Engine.Close unmaps the index they may still be traversing.
	srv := &http.Server{Addr: *addr, Handler: server.New(eng)}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	if err := <-done; err != nil {
		// Shutdown timed out: requests may still be traversing the
		// mapped arenas, so closing (unmapping) under them would crash.
		// Exit and let the OS reclaim the mapping instead.
		fmt.Fprintf(os.Stderr, "tsserve: shutdown: %v; exiting without unmapping\n", err)
		os.Exit(1)
	}
	if err := eng.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("tsserve: engine closed, bye")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tsserve: %v\n", err)
	os.Exit(1)
}
