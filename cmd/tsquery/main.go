// Command tsquery builds an index over a series file and answers a twin
// subsequence query against it.
//
// The query is either a window of the indexed series itself
// (-qstart, convenient for exploration) or a separate series file
// (-qfile) whose entire content is the query.
//
// Usage:
//
//	tsquery -series eeg.f64 -qstart 5000 -l 100 -eps 0.2
//	tsquery -series eeg.f64 -qfile query.f64 -eps 0.2 -method isax -norm persub
//	tsquery -series eeg.f64 -qstart 0 -l 100 -topk 5
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"twinsearch"
	"twinsearch/internal/obs"
	"twinsearch/internal/store"
)

func main() {
	var (
		seriesPath = flag.String("series", "", "series file (binary float64, required)")
		qFile      = flag.String("qfile", "", "query file (binary float64); mutually exclusive with -qstart")
		qStart     = flag.Int("qstart", -1, "query = series window starting here")
		l          = flag.Int("l", 100, "subsequence length (ignored with -qfile)")
		eps        = flag.Float64("eps", 0.2, "Chebyshev distance threshold")
		topk       = flag.Int("topk", 0, "if > 0, run a top-k query instead of a threshold query (TS-Index only)")
		method     = flag.String("method", "tsindex", "search method: tsindex, isax, kvindex, sweepline")
		norm       = flag.String("norm", "global", "normalization: raw, global, persub")
		maxShow    = flag.Int("show", 20, "print at most this many matches")
		saveIndex  = flag.String("saveindex", "", "after building, persist the TS-Index here")
		loadIndex  = flag.String("loadindex", "", "reopen a TS-Index persisted with -saveindex instead of rebuilding")
		mmapIndex  = flag.Bool("mmap", false, "memory-map the -loadindex file instead of reading it (near-zero open cost; pages fault in as the query touches them)")
		prefetch   = flag.Bool("prefetch", false, "warm a memory-mapped index at open (madvise + bounded touch) instead of paying page faults during the query")
		remote     = flag.String("remote", "", "query a running tsserve (standalone or coordinator) at this base URL instead of building anything locally")
		approx     = flag.Int("approx", 0, "if > 0, run an approximate search probing this many leaves (TS-Index only)")
		indexLen   = flag.Int("indexlen", 0, "index at this length instead of the query length; shorter queries then use the prefix search (TS-Index only)")
		shards     = flag.Int("shards", 0, "index partitions built and searched in parallel (0 = one index, -1 = one per CPU; TS-Index only)")
		meanShards = flag.Bool("meanshards", false, "partition shards by window mean instead of contiguous ranges (tighter per-shard bounds; needs -shards above 1)")
		trace      = flag.Bool("trace", false, "record the query's span trace and pretty-print it after the matches (with -remote, asks the server via ?trace=1)")
	)
	flag.Parse()
	if *seriesPath == "" && !(*remote != "" && *qFile != "") {
		fmt.Fprintln(os.Stderr, "tsquery: -series is required (except with -remote -qfile)")
		flag.Usage()
		os.Exit(2)
	}

	var data []float64
	var err error
	if *seriesPath != "" {
		data, err = store.ReadFile(*seriesPath)
		if err != nil {
			fatal(err)
		}
	}

	var q []float64
	switch {
	case *qFile != "":
		q, err = store.ReadFile(*qFile)
		if err != nil {
			fatal(err)
		}
		*l = len(q)
	case *qStart >= 0:
		if *qStart+*l > len(data) {
			fatal(fmt.Errorf("query window [%d, %d) outside series of length %d", *qStart, *qStart+*l, len(data)))
		}
		q = append([]float64(nil), data[*qStart:*qStart+*l]...)
	default:
		fatal(fmt.Errorf("one of -qfile or -qstart is required"))
	}

	if *remote != "" {
		// The server owns the index; this process only ships the raw
		// query and renders the answer.
		if *approx > 0 || *indexLen > 0 || *saveIndex != "" || *loadIndex != "" {
			fatal(fmt.Errorf("-remote queries use the server's index; -approx, -indexlen, -saveindex, and -loadindex do not apply"))
		}
		queryRemote(*remote, q, *eps, *topk, *maxShow, *trace)
		return
	}

	if *mmapIndex && *loadIndex == "" {
		fatal(fmt.Errorf("-mmap requires -loadindex (only a saved index can be mapped)"))
	}
	opt := twinsearch.Options{L: *l, NormSet: true, Shards: *shards,
		PartitionByMean: *meanShards, MMap: *mmapIndex, Prefetch: *prefetch}
	if *indexLen > 0 {
		if *indexLen < len(q) {
			fatal(fmt.Errorf("-indexlen %d below query length %d", *indexLen, len(q)))
		}
		opt.L = *indexLen
	}
	switch *norm {
	case "raw":
		opt.Norm = twinsearch.NormNone
	case "global":
		opt.Norm = twinsearch.NormGlobal
	case "persub":
		opt.Norm = twinsearch.NormPerSubsequence
	default:
		fatal(fmt.Errorf("unknown norm %q", *norm))
	}
	switch *method {
	case "tsindex":
		opt.Method = twinsearch.MethodTSIndex
	case "isax":
		opt.Method = twinsearch.MethodISAX
	case "kvindex":
		opt.Method = twinsearch.MethodKVIndex
	case "sweepline":
		opt.Method = twinsearch.MethodSweepline
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	buildStart := time.Now()
	var eng *twinsearch.Engine
	if *loadIndex != "" {
		eng, err = twinsearch.OpenSavedFile(data, *loadIndex, opt)
		if err != nil {
			fatal(err)
		}
		how := ""
		if eng.MappedBytes() > 0 {
			how = fmt.Sprintf(", %d bytes mmap-resident", eng.MappedBytes())
		}
		fmt.Printf("reopened index over %d subsequences (%s, %s%s) in %v\n",
			eng.NumSubsequences(), eng.Method(), eng.Norm(), how, time.Since(buildStart).Round(time.Millisecond))
	} else {
		eng, err = twinsearch.Open(data, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("indexed %d subsequences of length %d with %s (%s) in %v\n",
			eng.NumSubsequences(), eng.L(), eng.Method(), eng.Norm(), time.Since(buildStart).Round(time.Millisecond))
	}
	// Release the mapped arena (and any attached store) on every exit
	// path; fatal exits skip this, which the OS cleans up anyway.
	defer eng.Close()
	if *saveIndex != "" {
		if err := eng.SaveIndexFile(*saveIndex); err != nil {
			fatal(err)
		}
		fmt.Printf("persisted index to %s\n", *saveIndex)
	}

	// -trace installs a root span in the context; the engine's layers
	// grow the tree under it, printed after the matches.
	ctx := context.Background()
	var tr *obs.Trace
	if *trace {
		tr = obs.NewTrace("tsquery")
		ctx = obs.WithSpan(ctx, tr.Root)
	}

	queryStart := time.Now()
	var matches []twinsearch.Match
	switch {
	case *topk > 0:
		matches, err = eng.SearchTopKCtx(ctx, q, *topk)
	case *approx > 0:
		matches, err = eng.SearchApproxCtx(ctx, q, *eps, *approx)
	case len(q) < eng.L():
		matches, err = eng.SearchShorterCtx(ctx, q, *eps)
	default:
		matches, err = eng.SearchCtx(ctx, q, *eps)
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(queryStart)

	if *topk > 0 {
		fmt.Printf("top-%d nearest in %v:\n", *topk, elapsed.Round(time.Microsecond))
		for _, m := range matches {
			fmt.Printf("  start=%-10d chebyshev=%.6f\n", m.Start, m.Dist)
		}
		printTrace(tr)
		return
	}
	fmt.Printf("%d twins at eps=%g in %v\n", len(matches), *eps, elapsed.Round(time.Microsecond))
	for i, m := range matches {
		if i >= *maxShow {
			fmt.Printf("  ... %d more\n", len(matches)-*maxShow)
			break
		}
		fmt.Printf("  start=%d\n", m.Start)
	}
	printTrace(tr)
}

// printTrace finishes and pretty-prints a local trace (nil = -trace was
// not given).
func printTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	tr.Finish()
	fmt.Println("trace:")
	obs.WriteTree(os.Stdout, tr.Root)
}

// queryRemote sends the query to a running tsserve's public JSON API
// (/search or /topk) and prints the matches like a local run would. It
// works against any role that serves the public API — a standalone
// server or a cluster coordinator.
func queryRemote(base string, q []float64, eps float64, topk, maxShow int, trace bool) {
	path, body := "/search", map[string]interface{}{"query": q, "eps": eps}
	if topk > 0 {
		path, body = "/topk", map[string]interface{}{"query": q, "k": topk}
	}
	if trace {
		path += "?trace=1"
	}
	raw, err := json.Marshal(body)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			fatal(fmt.Errorf("%s: %s", path, e.Error))
		}
		fatal(fmt.Errorf("%s: %s", path, resp.Status))
	}
	var out struct {
		Count   int `json:"count"`
		Matches []struct {
			Start int      `json:"start"`
			Dist  *float64 `json:"dist"`
		} `json:"matches"`
		Trace *obs.Span `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if topk > 0 {
		fmt.Printf("top-%d nearest via %s in %v:\n", topk, base, elapsed.Round(time.Microsecond))
		for _, m := range out.Matches {
			d := -1.0
			if m.Dist != nil {
				d = *m.Dist
			}
			fmt.Printf("  start=%-10d chebyshev=%.6f\n", m.Start, d)
		}
		printRemoteTrace(out.Trace)
		return
	}
	fmt.Printf("%d twins at eps=%g via %s in %v\n", out.Count, eps, base, elapsed.Round(time.Microsecond))
	for i, m := range out.Matches {
		if i >= maxShow {
			fmt.Printf("  ... %d more\n", out.Count-maxShow)
			break
		}
		fmt.Printf("  start=%d\n", m.Start)
	}
	printRemoteTrace(out.Trace)
}

// printRemoteTrace pretty-prints the server's span tree when the
// response carried one (?trace=1).
func printRemoteTrace(s *obs.Span) {
	if s == nil {
		return
	}
	fmt.Println("trace:")
	obs.WriteTree(os.Stdout, s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tsquery: %v\n", err)
	os.Exit(1)
}
