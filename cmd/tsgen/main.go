// Command tsgen writes the synthetic evaluation datasets (the stand-ins
// for the paper's Insect Movement and EEG recordings) to disk in the
// flat binary float64 format the other tools read.
//
// Usage:
//
//	tsgen -dataset eeg -out eeg.f64 [-n 1801999] [-seed 1]
//	tsgen -dataset insect -out insect.f64
//	tsgen -dataset walk -out walk.f64 -n 100000
//	tsgen -dataset sine -out sine.f64 -n 100000 -period 500 -amp 2 -noise 0.1
package main

import (
	"flag"
	"fmt"
	"os"

	"twinsearch/internal/datasets"
	"twinsearch/internal/store"
)

func main() {
	var (
		dataset = flag.String("dataset", "eeg", "dataset to generate: eeg, insect, walk, sine")
		out     = flag.String("out", "", "output path (required)")
		n       = flag.Int("n", 0, "number of points (0 = the paper's length for eeg/insect)")
		seed    = flag.Int64("seed", 1, "generator seed")
		period  = flag.Float64("period", 500, "sine period in samples")
		amp     = flag.Float64("amp", 1, "sine amplitude")
		noise   = flag.Float64("noise", 0.1, "sine additive noise sigma")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tsgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var data []float64
	switch *dataset {
	case "eeg":
		if *n <= 0 {
			*n = datasets.EEGLen
		}
		data = datasets.EEGN(*seed, *n)
	case "insect":
		if *n <= 0 {
			*n = datasets.InsectLen
		}
		data = datasets.InsectN(*seed, *n)
	case "walk":
		if *n <= 0 {
			*n = 100000
		}
		data = datasets.RandomWalk(*seed, *n)
	case "sine":
		if *n <= 0 {
			*n = 100000
		}
		data = datasets.Sine(*seed, *n, *period, *amp, *noise)
	default:
		fmt.Fprintf(os.Stderr, "tsgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if err := store.WriteFile(*out, data); err != nil {
		fmt.Fprintf(os.Stderr, "tsgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d points (%s) to %s\n", len(data), *dataset, *out)
}
