// Command tsbench regenerates the paper's evaluation: Figures 4–8 plus
// the §1 intro experiment, printed as aligned tables (and optionally
// CSV), followed by a PASS/FAIL report of the paper's qualitative
// claims.
//
// Usage:
//
//	tsbench                       # every figure at the default scale
//	tsbench -figure 4             # one figure
//	tsbench -figure shard         # sharded TS-Index build/query scaling
//	tsbench -full                 # paper-sized EEG (1.8M points; slow)
//	tsbench -scale 0.1 -queries 20  # quick look
//	tsbench -csv results.csv      # also dump machine-readable rows
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"twinsearch/internal/harness"
	"twinsearch/internal/mbts/kernel"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "which experiment: intro, 4, 5, 6, 7, 8, shard, skew, frozen, coldopen, cluster, failover, kernel, serving, obs, all")
		scale    = flag.Float64("scale", 0.1, "EEG dataset scale (1 = paper's 1,801,999 points)")
		full     = flag.Bool("full", false, "shorthand for -scale 1 (with -queries 100 this is the paper's exact setup; expect hours: the sweepline pays one random read per window per query)")
		queries  = flag.Int("queries", 30, "workload size per experiment (paper: 100)")
		seed     = flag.Int64("seed", 1, "dataset and workload seed")
		csvPath  = flag.String("csv", "", "also write rows as CSV to this path")
		jsonPath = flag.String("json", "", "also write rows as JSON (with host/dispatch metadata) to this path")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
		mem      = flag.Bool("mem", false, "verify candidates in memory instead of the paper's disk-resident setup")
		workers  = flag.Int("workers", 0, "query-executor workers for the sharded experiments (0 = one per CPU)")
	)
	flag.Parse()
	if *full {
		*scale = 1
	}

	r := harness.NewRunner(*scale, *seed)
	defer r.Close()
	r.Queries = *queries
	r.DiskVerify = !*mem
	r.Workers = *workers
	if !*quiet {
		r.Log = os.Stderr
	}

	var rows []harness.Row
	run := func(name string, f func() []harness.Row) {
		if *figure == "all" || *figure == name {
			rows = append(rows, f()...)
		}
	}
	run("intro", r.FigureIntro)
	run("4", r.Figure4)
	run("5", r.Figure5)
	run("6", r.Figure6)
	run("7", r.Figure7)
	run("8", r.Figure8)
	run("shard", r.FigureShard)
	run("skew", r.FigureSkew)
	run("frozen", r.FigureFrozen)
	run("coldopen", r.FigureColdOpen)
	run("cluster", r.FigureCluster)
	run("failover", r.FigureFailover)
	run("kernel", r.FigureKernel)
	run("serving", r.FigureServing)
	run("obs", r.FigureObs)

	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "tsbench: unknown figure %q\n", *figure)
		os.Exit(2)
	}

	harness.PrintTable(os.Stdout, rows)

	report := harness.ShapeReport(rows)
	if len(report) > 0 {
		fmt.Println("\n== Shape report (paper's qualitative claims) ==")
		fmt.Println(strings.Join(report, "\n"))
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
			os.Exit(1)
		}
		harness.PrintCSV(f, rows)
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(rows), *csvPath)
	}

	if *jsonPath != "" {
		doc := struct {
			Tool    string        `json:"tool"`
			Figure  string        `json:"figure"`
			GOARCH  string        `json:"goarch"`
			CPUs    int           `json:"cpus"`
			Kernel  string        `json:"kernel_dispatch"`
			Scale   float64       `json:"scale"`
			Queries int           `json:"queries"`
			Seed    int64         `json:"seed"`
			Rows    []harness.Row `json:"rows"`
		}{
			Tool: "tsbench", Figure: *figure,
			GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
			Kernel: kernel.Active(),
			Scale:  *scale, Queries: *queries, Seed: *seed,
			Rows: rows,
		}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(rows), *jsonPath)
	}
}
