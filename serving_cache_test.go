package twinsearch

// Serving-cache differential tests: with the plan and result caches
// enabled, every answer — the miss that fills the cache and the hit
// served from it — must be byte-identical (Start and the exact Dist
// bit pattern, order included) to the answer an uncached engine
// computes fresh, on every search path (Search, SearchStats,
// SearchTopK, SearchShorter, SearchApprox), every normalization mode,
// and every engine kind the parity suite covers. The one carve-out is
// approximate search on sharded engines, where the probed subset is
// scheduling-dependent: there the contract is that the cache
// reproduces one valid traversal, so hits must be identical to the
// miss that cached them, not to an independent fresh call.

import (
	"fmt"
	"sync"
	"testing"

	"twinsearch/internal/datasets"
)

// withServingCaches enables both caches at their default sizes.
func withServingCaches(o *Options) {
	o.PlanCache = -1
	o.ResultCacheBytes = -1
}

func TestServingCacheDifferential(t *testing.T) {
	ts := datasets.InsectN(41, 5000)
	const l = 64
	queries := datasets.Queries(ts, 43, 4, l)
	const eps, approxBudget = 0.5, 8
	const topK = 5

	for _, norm := range []NormMode{NormNone, NormGlobal, NormPerSubsequence} {
		t.Run(fmt.Sprint(norm), func(t *testing.T) {
			plain := parityEngines(t, ts, l, norm)
			cached := parityEnginesMod(t, ts, l, norm, withServingCaches)
			for name, ce := range cached {
				pe := plain[name]
				sharded := name != "unsharded" && name != "mmap"
				for qi, q := range queries {
					// Search: fresh vs miss vs hit.
					want, err := pe.Search(q, eps)
					if err != nil {
						t.Fatalf("%s q%d: plain Search: %v", name, qi, err)
					}
					miss, err := ce.Search(q, eps)
					if err != nil {
						t.Fatalf("%s q%d: cached Search (miss): %v", name, qi, err)
					}
					hit, err := ce.Search(q, eps)
					if err != nil {
						t.Fatalf("%s q%d: cached Search (hit): %v", name, qi, err)
					}
					if !matchListsEq(want, miss) || !matchListsEq(want, hit) {
						t.Fatalf("%s q%d: Search diverged: plain %d, miss %d, hit %d matches",
							name, qi, len(want), len(miss), len(hit))
					}

					// SearchStats: matches and traversal counters both cached.
					wantMs, _, err := pe.SearchStats(q, eps)
					if err != nil {
						t.Fatalf("%s q%d: plain SearchStats: %v", name, qi, err)
					}
					missMs, missSt, err := ce.SearchStats(q, eps)
					if err != nil {
						t.Fatalf("%s q%d: cached SearchStats (miss): %v", name, qi, err)
					}
					hitMs, hitSt, err := ce.SearchStats(q, eps)
					if err != nil {
						t.Fatalf("%s q%d: cached SearchStats (hit): %v", name, qi, err)
					}
					if !matchListsEq(wantMs, missMs) || !matchListsEq(wantMs, hitMs) {
						t.Fatalf("%s q%d: SearchStats matches diverged", name, qi)
					}
					if hitSt != missSt {
						t.Fatalf("%s q%d: SearchStats stats not reproduced by hit: miss %+v, hit %+v",
							name, qi, missSt, hitSt)
					}

					// SearchTopK.
					wantK, err := pe.SearchTopK(q, topK)
					if err != nil {
						t.Fatalf("%s q%d: plain SearchTopK: %v", name, qi, err)
					}
					missK, err := ce.SearchTopK(q, topK)
					if err != nil {
						t.Fatalf("%s q%d: cached SearchTopK (miss): %v", name, qi, err)
					}
					hitK, err := ce.SearchTopK(q, topK)
					if err != nil {
						t.Fatalf("%s q%d: cached SearchTopK (hit): %v", name, qi, err)
					}
					if !matchListsEq(wantK, missK) || !matchListsEq(wantK, hitK) {
						t.Fatalf("%s q%d: SearchTopK diverged", name, qi)
					}

					// SearchShorter: prefix queries are unsound under
					// per-subsequence normalization (each length renormalizes).
					if norm != NormPerSubsequence {
						short := q[:l/2]
						wantP, err := pe.SearchShorter(short, eps)
						if err != nil {
							t.Fatalf("%s q%d: plain SearchShorter: %v", name, qi, err)
						}
						missP, err := ce.SearchShorter(short, eps)
						if err != nil {
							t.Fatalf("%s q%d: cached SearchShorter (miss): %v", name, qi, err)
						}
						hitP, err := ce.SearchShorter(short, eps)
						if err != nil {
							t.Fatalf("%s q%d: cached SearchShorter (hit): %v", name, qi, err)
						}
						if !matchListsEq(wantP, missP) || !matchListsEq(wantP, hitP) {
							t.Fatalf("%s q%d: SearchShorter diverged", name, qi)
						}
					}

					// SearchApprox: on sharded engines the fresh subset is
					// scheduling-dependent, so the plain comparison only
					// holds unsharded; the hit must always replay the miss.
					missA, err := ce.SearchApprox(q, eps, approxBudget)
					if err != nil {
						t.Fatalf("%s q%d: cached SearchApprox (miss): %v", name, qi, err)
					}
					hitA, err := ce.SearchApprox(q, eps, approxBudget)
					if err != nil {
						t.Fatalf("%s q%d: cached SearchApprox (hit): %v", name, qi, err)
					}
					if !matchListsEq(missA, hitA) {
						t.Fatalf("%s q%d: SearchApprox hit did not replay the cached miss", name, qi)
					}
					if !sharded {
						wantA, err := pe.SearchApprox(q, eps, approxBudget)
						if err != nil {
							t.Fatalf("%s q%d: plain SearchApprox: %v", name, qi, err)
						}
						if !matchListsEq(wantA, missA) {
							t.Fatalf("%s q%d: SearchApprox diverged from plain", name, qi)
						}
					}
				}
				st := ce.ServingStats()
				if st.Result.Hits == 0 || st.Result.Misses == 0 {
					t.Fatalf("%s: result cache never exercised: %+v", name, st.Result)
				}
			}
		})
	}
}

// TestServingCacheAppendInvalidation is the /append↔cache regression
// at the engine layer: a result cached before Append must never be
// served after it — the epoch in the key changes, so the next call
// recomputes and matches a fresh engine over the extended series.
func TestServingCacheAppendInvalidation(t *testing.T) {
	ts := datasets.EEGN(47, 3000)
	const l = 64
	q := datasets.Queries(ts, 53, 1, l)[0]
	const eps = 0.4

	ce, err := Open(ts, Options{L: l, PlanCache: -1, ResultCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()

	before, err := ce.Search(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Search(q, eps); err != nil { // cache the answer
		t.Fatal(err)
	}
	epochBefore := ce.Epoch()

	// Append the query itself: the extended series must gain at least
	// one new exact twin, so a stale cached answer is detectable.
	if err := ce.Append(q...); err != nil {
		t.Fatal(err)
	}
	if ce.Epoch() == epochBefore {
		t.Fatalf("Append did not bump the epoch (still %d)", epochBefore)
	}

	after, err := ce.Search(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) {
		t.Fatalf("post-append search returned %d matches (≤ pre-append %d): stale cached result",
			len(after), len(before))
	}
	extended := append(append([]float64{}, ts...), q...)
	fresh, err := Open(extended, Options{L: l})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want, err := fresh.Search(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !matchListsEq(after, want) {
		t.Fatalf("post-append cached-engine answer diverged from a fresh engine: %d vs %d matches",
			len(after), len(want))
	}
}

// TestServingCacheConcurrentHammer drives the result cache from many
// goroutines with interleaved Appends under the same reader/writer
// discipline the HTTP server enforces (searches share an RLock, Append
// takes the write lock). Every observed (epoch, answer) pair must
// match the answer an uncached shadow engine gave at that epoch — no
// reader may see a pre-append answer tagged with a post-append epoch —
// and the cache counters must account for every lookup.
func TestServingCacheConcurrentHammer(t *testing.T) {
	ts := datasets.EEGN(59, 2000)
	const l = 64
	q := datasets.Queries(ts, 61, 1, l)[0]
	const eps, appends, readers, readsPer = 0.4, 8, 8, 60

	ce, err := Open(ts, Options{L: l, PlanCache: -1, ResultCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()
	shadow, err := Open(ts, Options{L: l})
	if err != nil {
		t.Fatal(err)
	}
	defer shadow.Close()

	// wantAt[epoch] is the shadow engine's answer while the cached
	// engine was at that epoch; filled under the write lock so it is
	// complete before any reader can observe the epoch.
	var mu sync.RWMutex
	wantAt := map[uint64][]Match{}
	record := func() {
		ms, err := shadow.Search(q, eps)
		if err != nil {
			t.Error(err)
			return
		}
		wantAt[ce.Epoch()] = ms
	}
	mu.Lock()
	record()
	mu.Unlock()

	type obs struct {
		epoch uint64
		ms    []Match
	}
	results := make([][]obs, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < readsPer; i++ {
				mu.RLock()
				epoch := ce.Epoch()
				ms, err := ce.Search(q, eps)
				mu.RUnlock()
				if err != nil {
					t.Error(err)
					return
				}
				results[g] = append(results[g], obs{epoch, ms})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			mu.Lock()
			if err := ce.Append(q[:8]...); err != nil {
				t.Error(err)
			} else if err := shadow.Append(q[:8]...); err != nil {
				t.Error(err)
			} else {
				record()
			}
			mu.Unlock()
		}
	}()
	wg.Wait()

	total := 0
	for g := range results {
		for _, o := range results[g] {
			total++
			want, ok := wantAt[o.epoch]
			if !ok {
				t.Fatalf("reader observed unknown epoch %d", o.epoch)
			}
			if !matchListsEq(o.ms, want) {
				t.Fatalf("epoch %d: cached answer diverged from the shadow engine (%d vs %d matches): stale result",
					o.epoch, len(o.ms), len(want))
			}
		}
	}
	st := ce.ServingStats()
	if got := st.Result.Hits + st.Result.Misses; got != uint64(total) {
		t.Fatalf("cache counters inconsistent: %d hits + %d misses != %d lookups",
			st.Result.Hits, st.Result.Misses, total)
	}
	if st.Result.Hits == 0 {
		t.Fatal("hammer never hit the cache")
	}
}
